//! The cross-file rule catalog (R6–R10).
//!
//! These rules run once over the whole workspace, on top of the item
//! parser and the conservative graphs in [`graph`](crate::graph):
//!
//! * **R6 durability-ordering** — in `net::engine`, any fn that can reach
//!   a `persist::commit_*`/`append*` call must construct its `Outcome`
//!   with a live `durable` flag (a literal `false`, or a missing field,
//!   would let the server release an `OK` reply without a covering
//!   fsync — DESIGN §12). Workspace-wide, no `flush()`/`append_batch()`
//!   result may be discarded via `let _ =`.
//! * **R7 lock-discipline** — every `.lock()` call is immediately made
//!   poison-tolerant (`.unwrap_or_else(PoisonError::into_inner)`), and
//!   the acquisition-order graph over named `Mutex` struct fields is
//!   cycle-free.
//! * **R8 metric-catalog drift** — `jigsaw_*` metric names at
//!   registration sites ↔ the DESIGN §9 catalog, both directions.
//! * **R9 protocol-table drift** — the `Verb`/`ErrCode` tables in
//!   `net/src/protocol.rs` ↔ the generated HELP usage strings ↔ the
//!   README serve-grammar section, both directions.
//! * **R10 recycle-leak** — a `decide(...)`/`try_admit(...)` result in
//!   `bench`/`sim`/
//!   `cli` that is locally bound and then neither recycled, returned, nor
//!   stored escapes the PR-8 scratch-pool cycle and is flagged.
//!
//! Soundness notes live in DESIGN §15. Every rule here over-approximates
//! (name-based matching, no type resolution); false positives are
//! expected to be rare and waivable with a reasoned
//! `// jigsaw-lint: allow(R…) -- why`.

use crate::graph::{calls_per_fn, Acquisition, LockOrder, Reach};
use crate::lexer::Tok;
use crate::rules::Violation;
use crate::{Docs, Scan};
use std::collections::{BTreeMap, BTreeSet};

/// The one file whose `Outcome` constructions R6 audits.
pub const ENGINE_FILE: &str = "crates/net/src/engine.rs";
/// The file holding the `Verb`/`ErrCode` tables R9 audits.
pub const PROTOCOL_FILE: &str = "crates/net/src/protocol.rs";

/// Journal-writing APIs: reaching any of these marks a path as durable.
const DURABILITY_APIS: [&str; 7] = [
    "commit_grant",
    "commit_submit",
    "commit_reserve",
    "commit_release",
    "commit_migrate",
    "append",
    "append_batch",
];

/// Registry methods whose first string argument is a metric name.
const METRIC_METHODS: [&str; 6] = [
    "counter",
    "gauge",
    "histogram",
    "counter_with",
    "gauge_with",
    "histogram_with",
];

/// Crates whose locally bound `allocate(...)` results R10 audits —
/// the experiment drivers that own the scratch-pool cycle.
const R10_CRATES: [&str; 3] = ["bench", "sim", "cli"];

/// Run every cross-file rule over the scanned workspace.
pub(crate) fn check_workspace(scans: &[Scan], docs: &Docs) -> Vec<Violation> {
    let mut out = Vec::new();
    for scan in scans {
        if scan.class.rel_path == ENGINE_FILE {
            r6_outcome_durability(scan, &mut out);
        }
        r6_discarded_flush(scan, &mut out);
        r7_poison_tolerance(scan, &mut out);
        r10_recycle_leak(scan, &mut out);
    }
    r7_lock_order(scans, &mut out);
    r8_metric_catalog(scans, docs, &mut out);
    r9_protocol_tables(scans, docs, &mut out);
    out
}

fn v(file: &str, line: u32, col: u32, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        col,
        rule,
        message,
    }
}

fn line_no(idx: usize) -> u32 {
    u32::try_from(idx + 1).unwrap_or(u32::MAX)
}

// --- R6: durability ordering ------------------------------------------------

/// In `net::engine`, any fn that can reach a journal-writing call must
/// construct `Outcome` with a live `durable` field.
fn r6_outcome_durability(scan: &Scan, out: &mut Vec<Violation>) {
    let toks = &scan.toks;
    let calls = calls_per_fn(toks, &scan.parsed);
    let reach = Reach::new(&scan.parsed, &calls);
    let target = |n: &str| DURABILITY_APIS.contains(&n);

    for (fi, f) in scan.parsed.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        if !reach.reaches(fi, &target) {
            continue;
        }
        let mut i = open + 1;
        while i < close {
            if toks[i].ident() == Some("Outcome")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('{'))
            {
                if let Some(lit_close) = crate::parser::matching_brace(toks, i + 1) {
                    check_outcome_literal(scan, toks, i, i + 1, lit_close, &f.name, out);
                    i = lit_close + 1;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// Inspect one `Outcome { … }` literal: the `durable` field must exist and
/// must not be the literal `false`.
fn check_outcome_literal(
    scan: &Scan,
    toks: &[Tok],
    name_idx: usize,
    open: usize,
    close: usize,
    fn_name: &str,
    out: &mut Vec<Violation>,
) {
    let mut depth = 0i32;
    let mut found = false;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 1
            && t.ident() == Some("durable")
            && (toks[i - 1].is_punct('{') || toks[i - 1].is_punct(','))
        {
            found = true;
            if toks.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                // Collect the value tokens at this depth.
                let mut vals: Vec<&Tok> = Vec::new();
                let mut j = i + 2;
                let mut vdepth = 0i32;
                while j < close {
                    let vt = &toks[j];
                    if vt.is_punct('(') || vt.is_punct('[') || vt.is_punct('{') {
                        vdepth += 1;
                    } else if vt.is_punct(')') || vt.is_punct(']') || vt.is_punct('}') {
                        vdepth -= 1;
                    } else if vt.is_punct(',') && vdepth == 0 {
                        break;
                    }
                    vals.push(vt);
                    j += 1;
                }
                if vals.len() == 1 && vals[0].ident() == Some("false") {
                    out.push(v(
                        &scan.class.rel_path,
                        toks[name_idx].line,
                        toks[name_idx].col,
                        "R6",
                        format!(
                            "`{fn_name}` journals (reaches a persist commit/append) but \
                             constructs `Outcome` with `durable: false` — the reply would \
                             be released without a covering fsync (DESIGN §12)"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
    if !found {
        out.push(v(
            &scan.class.rel_path,
            toks[name_idx].line,
            toks[name_idx].col,
            "R6",
            format!(
                "`{fn_name}` journals (reaches a persist commit/append) but constructs \
                 `Outcome` without a `durable` field — group commit cannot know to hold \
                 the reply for the next fsync (DESIGN §12)"
            ),
        ));
    }
}

/// Workspace-wide: `let _ = …flush(…)` / `let _ = …append_batch(…)`
/// silently discards a durability error (fail-stop contract, DESIGN §12).
fn r6_discarded_flush(scan: &Scan, out: &mut Vec<Violation>) {
    let toks = &scan.toks;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].ident() == Some("let")
            && toks[i + 1].ident() == Some("_")
            && toks[i + 2].is_punct('=')
        {
            let mut depth = 0i32;
            let mut j = i + 3;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                }
                if matches!(t.ident(), Some("flush") | Some("append_batch"))
                    && j > 0
                    && toks[j - 1].is_punct('.')
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    out.push(v(
                        &scan.class.rel_path,
                        toks[i].line,
                        toks[i].col,
                        "R6",
                        format!(
                            "`let _ =` discards a `{}()` result: a failed fsync must \
                             fail-stop, not vanish (DESIGN §12)",
                            toks[j].ident().unwrap_or("flush"),
                        ),
                    ));
                    break;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
}

// --- R7: lock discipline ----------------------------------------------------

/// Every `.lock()` call must be made poison-tolerant on the spot.
fn r7_poison_tolerance(scan: &Scan, out: &mut Vec<Violation>) {
    if scan.class.test_code {
        return;
    }
    let toks = &scan.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test
            || t.ident() != Some("lock")
            || i == 0
            || !toks[i - 1].is_punct('.')
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        // Find the call's closing paren.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let tolerant = toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(j + 2).and_then(Tok::ident) == Some("unwrap_or_else")
            && toks[j + 3..toks.len().min(j + 16)]
                .iter()
                .any(|n| n.ident() == Some("into_inner"));
        if !tolerant {
            out.push(v(
                &scan.class.rel_path,
                t.line,
                t.col,
                "R7",
                "`.lock()` without poison tolerance: use the crate's `lock` helper or \
                 `.unwrap_or_else(std::sync::PoisonError::into_inner)` so one panicked \
                 thread cannot wedge the daemon"
                    .into(),
            ));
        }
    }
}

/// Build the workspace lock-order graph over named `Mutex` fields and
/// report a representative edge of any cycle.
fn r7_lock_order(scans: &[Scan], out: &mut Vec<Violation>) {
    // Universe: every named Mutex struct field in the workspace.
    let mut fields: BTreeSet<&str> = BTreeSet::new();
    for scan in scans {
        for mf in &scan.parsed.mutex_fields {
            fields.insert(mf.field.as_str());
        }
    }
    if fields.is_empty() {
        return;
    }

    let mut order = LockOrder::default();
    for scan in scans {
        if scan.class.test_code {
            continue;
        }
        let toks = &scan.toks;
        for f in &scan.parsed.fns {
            if f.in_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let mut acqs: Vec<Acquisition> = Vec::new();
            for i in open + 1..close {
                if toks[i].ident() != Some("lock")
                    || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                let acquired: Option<&str> = if toks[i - 1].is_punct('.') {
                    // `….field.lock()` — the field ident sits two back.
                    toks.get(i.wrapping_sub(2))
                        .and_then(Tok::ident)
                        .filter(|name| fields.contains(name))
                } else if toks
                    .get(i.wrapping_sub(1))
                    .and_then(Tok::ident)
                    .is_some_and(|p| p == "fn")
                {
                    None // the helper's own definition
                } else {
                    // Helper call `lock(&x.field)` — first known field in args.
                    let mut depth = 0i32;
                    let mut j = i + 1;
                    let mut hit = None;
                    while j < close {
                        if toks[j].is_punct('(') {
                            depth += 1;
                        } else if toks[j].is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if let Some(name) = toks[j].ident() {
                            if fields.contains(name) {
                                hit = Some(name);
                                break;
                            }
                        }
                        j += 1;
                    }
                    hit
                };
                if let Some(field) = acquired {
                    acqs.push(Acquisition {
                        field: field.to_string(),
                        file: scan.class.rel_path.clone(),
                        line: toks[i].line,
                    });
                }
            }
            order.add_fn(&acqs);
        }
    }

    if let Some((cycle, (file, line))) = order.find_cycle() {
        out.push(v(
            &file,
            line,
            1,
            "R7",
            format!(
                "lock-order cycle over Mutex fields: {} — two threads interleaving \
                 these acquisitions can deadlock; pick one global order",
                cycle.join(" -> "),
            ),
        ));
    }
}

// --- R8: metric-catalog drift -----------------------------------------------

/// Rows of the DESIGN §9 catalog: (metric name, 1-based line).
fn design_catalog(design: &str) -> Vec<(String, u32)> {
    let mut rows = Vec::new();
    let mut in_sec9 = false;
    for (idx, line) in design.lines().enumerate() {
        if line.starts_with("## 9") {
            in_sec9 = true;
            continue;
        }
        if in_sec9 && line.starts_with("## ") {
            break;
        }
        if !in_sec9 {
            continue;
        }
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("| `") {
            if let Some(end) = rest.find('`') {
                let name = &rest[..end];
                if name.starts_with("jigsaw_") {
                    rows.push((name.to_string(), line_no(idx)));
                }
            }
        }
    }
    rows
}

/// `jigsaw_*` metric names at registration sites ↔ the DESIGN §9 catalog,
/// both directions. Non-`jigsaw_` registrations (the `par_*` pool metrics)
/// are out of catalog scope by prefix.
fn r8_metric_catalog(scans: &[Scan], docs: &Docs, out: &mut Vec<Violation>) {
    if docs.design.is_empty() {
        return;
    }
    let catalog = design_catalog(&docs.design);
    let catalog_names: BTreeSet<&str> = catalog.iter().map(|(n, _)| n.as_str()).collect();

    // Registration sites: `.counter("name", …)` and friends in lib source.
    let mut registered: BTreeMap<String, (String, u32, u32)> = BTreeMap::new();
    for scan in scans {
        if !scan.class.lib_source {
            continue;
        }
        let toks = &scan.toks;
        for i in 1..toks.len() {
            let t = &toks[i];
            if t.in_test
                || !toks[i - 1].is_punct('.')
                || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            let Some(method) = t.ident() else { continue };
            if !METRIC_METHODS.contains(&method) {
                continue;
            }
            let Some(name) = toks.get(i + 2).and_then(Tok::str_lit) else {
                continue;
            };
            if name.starts_with("jigsaw_") {
                registered.entry(name.to_string()).or_insert((
                    scan.class.rel_path.clone(),
                    t.line,
                    t.col,
                ));
            }
        }
    }

    for (name, (file, line, col)) in &registered {
        if !catalog_names.contains(name.as_str()) {
            out.push(v(
                file,
                *line,
                *col,
                "R8",
                format!(
                    "metric `{name}` is registered here but missing from the DESIGN §9 \
                     catalog — add a catalog row (name, type, labels, source)"
                ),
            ));
        }
    }
    for (name, line) in &catalog {
        if !registered.contains_key(name) {
            out.push(v(
                "DESIGN.md",
                *line,
                1,
                "R8",
                format!(
                    "DESIGN §9 catalogs metric `{name}` but no registration site was \
                     found in any lib crate — stale row or lost instrumentation"
                ),
            ));
        }
    }
}

// --- R9: protocol-table drift -----------------------------------------------

/// `(verbs: name/usage/line, err_codes: token/line)` extracted from the
/// protocol file's `VERBS` const and `ErrCode::as_str`.
struct ProtocolTables {
    verbs: Vec<(String, String, u32)>,
    codes: Vec<(String, u32)>,
}

fn protocol_tables(scan: &Scan) -> ProtocolTables {
    let toks = &scan.toks;
    let mut verbs: Vec<(String, String, u32)> = Vec::new();

    // `const VERBS … = [ Verb { name: "…", usage: "…", … }, … ];`
    if let Some(start) = toks.iter().position(|t| t.ident() == Some("VERBS")) {
        let mut depth = 0i32;
        let mut j = start;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('[') || t.is_punct('{') || t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(']') || t.is_punct('}') || t.is_punct(')') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 && j > start + 1 {
                break;
            } else if t.ident() == Some("name") && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(name) = toks.get(j + 2).and_then(Tok::str_lit) {
                    verbs.push((name.to_string(), String::new(), t.line));
                }
            } else if t.ident() == Some("usage") && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                if let (Some(usage), Some(last)) =
                    (toks.get(j + 2).and_then(Tok::str_lit), verbs.last_mut())
                {
                    last.1 = usage.to_string();
                }
            }
            j += 1;
        }
    }

    // `impl ErrCode { fn as_str … }`: every string literal in the body.
    let mut codes: Vec<(String, u32)> = Vec::new();
    for f in scan.parsed.fns_named("as_str") {
        if f.self_ty.as_deref() != Some("ErrCode") {
            continue;
        }
        if let Some((open, close)) = f.body {
            for t in &toks[open + 1..close] {
                if let Some(code) = t.str_lit() {
                    codes.push((code.to_string(), t.line));
                }
            }
        }
    }
    ProtocolTables { verbs, codes }
}

/// README serve-grammar verbs: the first code fence after the heading
/// containing "Serve protocol". Returns (fence line, [(verb, line)]).
fn readme_verbs(readme: &str) -> Option<(u32, Vec<(String, u32)>)> {
    let lines: Vec<&str> = readme.lines().collect();
    let mut i = lines
        .iter()
        .position(|l| l.starts_with('#') && l.contains("Serve protocol"))?;
    while i < lines.len() && !lines[i].trim_start().starts_with("```") {
        i += 1;
    }
    if i >= lines.len() {
        return None;
    }
    let fence_line = line_no(i);
    let mut verbs = Vec::new();
    let mut j = i + 1;
    while j < lines.len() && !lines[j].trim_start().starts_with("```") {
        if let Some(first) = lines[j].split_whitespace().next() {
            if first != "OK"
                && first != "ERR"
                && first.chars().all(|c| c.is_ascii_uppercase() || c == '-')
            {
                verbs.push((first.to_string(), line_no(j)));
            }
        }
        j += 1;
    }
    Some((fence_line, verbs))
}

/// README error codes: backticked lowercase tokens in the paragraph that
/// starts with "Error codes". Returns (paragraph line, [(code, line)]).
fn readme_err_codes(readme: &str) -> Option<(u32, Vec<(String, u32)>)> {
    let lines: Vec<&str> = readme.lines().collect();
    let start = lines.iter().position(|l| l.starts_with("Error codes"))?;
    let mut codes = Vec::new();
    let mut j = start;
    while j < lines.len() && !lines[j].trim().is_empty() {
        let mut rest = lines[j];
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let token = &tail[..close];
            if !token.is_empty()
                && token
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                codes.push((token.to_string(), line_no(j)));
            }
            rest = &tail[close + 1..];
        }
        j += 1;
    }
    Some((line_no(start), codes))
}

/// `Verb`/`ErrCode` tables ↔ generated HELP usages ↔ README grammar
/// section, both directions.
fn r9_protocol_tables(scans: &[Scan], docs: &Docs, out: &mut Vec<Violation>) {
    let Some(scan) = scans.iter().find(|s| s.class.rel_path == PROTOCOL_FILE) else {
        return;
    };
    let tables = protocol_tables(scan);
    if tables.verbs.is_empty() {
        out.push(v(
            PROTOCOL_FILE,
            1,
            1,
            "R9",
            "could not extract any `Verb { name: … }` entries from the VERBS table — \
             the protocol surface is no longer statically auditable"
                .into(),
        ));
        return;
    }

    // HELP structural check: each usage string must begin with its verb.
    for (name, usage, line) in &tables.verbs {
        if !usage.starts_with(name.as_str()) {
            out.push(v(
                PROTOCOL_FILE,
                *line,
                1,
                "R9",
                format!(
                    "HELP usage for `{name}` is `{usage}` — generated HELP text must \
                     begin with the verb it documents"
                ),
            ));
        }
    }

    if docs.readme.is_empty() {
        return;
    }
    let verb_names: BTreeSet<&str> = tables.verbs.iter().map(|(n, _, _)| n.as_str()).collect();
    let code_names: BTreeSet<&str> = tables.codes.iter().map(|(c, _)| c.as_str()).collect();

    match readme_verbs(&docs.readme) {
        None => out.push(v(
            "README.md",
            1,
            1,
            "R9",
            "serve-grammar section not found (expected a heading containing \
             'Serve protocol' followed by a code fence)"
                .into(),
        )),
        Some((fence_line, readme_vs)) => {
            let readme_names: BTreeSet<&str> = readme_vs.iter().map(|(n, _)| n.as_str()).collect();
            for (name, _, _) in &tables.verbs {
                if !readme_names.contains(name.as_str()) {
                    out.push(v(
                        "README.md",
                        fence_line,
                        1,
                        "R9",
                        format!(
                            "verb `{name}` is in the protocol VERBS table but missing \
                             from the README serve-grammar fence"
                        ),
                    ));
                }
            }
            for (name, line) in &readme_vs {
                if !verb_names.contains(name.as_str()) {
                    out.push(v(
                        "README.md",
                        *line,
                        1,
                        "R9",
                        format!(
                            "README documents verb `{name}` which is not in the \
                             protocol VERBS table"
                        ),
                    ));
                }
            }
        }
    }

    match readme_err_codes(&docs.readme) {
        None => out.push(v(
            "README.md",
            1,
            1,
            "R9",
            "error-code paragraph not found (expected a paragraph starting with \
             'Error codes')"
                .into(),
        )),
        Some((para_line, readme_cs)) => {
            let readme_names: BTreeSet<&str> = readme_cs.iter().map(|(c, _)| c.as_str()).collect();
            for (code, _) in &tables.codes {
                if !readme_names.contains(code.as_str()) {
                    out.push(v(
                        "README.md",
                        para_line,
                        1,
                        "R9",
                        format!(
                            "error code `{code}` is in `ErrCode::as_str` but missing \
                             from the README error-code paragraph"
                        ),
                    ));
                }
            }
            for (code, line) in &readme_cs {
                if !code_names.contains(code.as_str()) {
                    out.push(v(
                        "README.md",
                        *line,
                        1,
                        "R9",
                        format!(
                            "README documents error code `{code}` which is not in \
                             `ErrCode::as_str`"
                        ),
                    ));
                }
            }
        }
    }
}

// --- R10: recycle leak ------------------------------------------------------

/// A locally bound `decide(...)`/`try_admit(...)` result in the
/// experiment-driver crates must be recycled, returned, or stored —
/// anything else silently defeats the PR-8 zero-alloc pool cycle. (The
/// legacy `allocate` ident is still matched so stale call sites cannot
/// dodge the audit.)
fn r10_recycle_leak(scan: &Scan, out: &mut Vec<Violation>) {
    if !R10_CRATES.contains(&scan.class.crate_name.as_str()) || scan.class.test_code {
        return;
    }
    let toks = &scan.toks;
    for f in &scan.parsed.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let mut i = open + 1;
        while i < close {
            if toks[i].ident() != Some("let") {
                i += 1;
                continue;
            }
            let let_idx = i;
            let in_cond =
                let_idx > 0 && matches!(toks[let_idx - 1].ident(), Some("if") | Some("while"));
            // Binding pattern: `x`, `mut x`, `Ok(x)`, `Some(x)` (with
            // optional `mut`). Anything else (tuples, structs) is skipped.
            let mut k = i + 1;
            if toks.get(k).and_then(Tok::ident) == Some("mut") {
                k += 1;
            }
            let bound: Option<&str> = match toks.get(k).and_then(Tok::ident) {
                Some("Ok" | "Some") => {
                    if toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                        let inner = if toks.get(k + 2).and_then(Tok::ident) == Some("mut") {
                            k + 3
                        } else {
                            k + 2
                        };
                        if toks.get(inner + 1).is_some_and(|t| t.is_punct(')'))
                            && toks.get(inner + 2).is_some_and(|t| t.is_punct('='))
                        {
                            k = inner + 2;
                            toks.get(inner).and_then(Tok::ident)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                Some(name) => {
                    if toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
                        k += 1;
                        Some(name)
                    } else {
                        None
                    }
                }
                None => None,
            };
            let Some(bound) = bound else {
                i += 1;
                continue;
            };
            // Init range: from after `=` to the statement end (`;` for
            // plain lets — brace-aware for struct literals and `let-else`
            // blocks — or the block `{` for `if let`/`while let`).
            let mut j = k + 1;
            let mut depth = 0i32;
            let mut calls_allocate = false;
            while j < close {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || (!in_cond && t.is_punct('{')) {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || (!in_cond && t.is_punct('}')) {
                    depth -= 1;
                } else if (t.is_punct(';') || (in_cond && t.is_punct('{'))) && depth <= 0 {
                    break;
                }
                if matches!(t.ident(), Some("allocate" | "try_admit" | "decide"))
                    && toks[j - 1].is_punct('.')
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    calls_allocate = true;
                }
                j += 1;
            }
            if !calls_allocate {
                i = j;
                continue;
            }
            // From the end of the statement to the end of the fn: the
            // binding must be recycled, or escape (any use not immediately
            // followed by `.` — a return, a call argument, a store).
            let mut escapes = false;
            for u in j..close {
                let t = &toks[u];
                if matches!(t.ident(), Some("recycle") | Some("release")) {
                    escapes = true;
                    break;
                }
                if t.ident() == Some(bound) && !toks.get(u + 1).is_some_and(|n| n.is_punct('.')) {
                    escapes = true;
                    break;
                }
            }
            if !escapes {
                out.push(v(
                    &scan.class.rel_path,
                    toks[let_idx].line,
                    toks[let_idx].col,
                    "R10",
                    format!(
                        "`{bound}` binds an allocation-decision result but is neither \
                         recycled, returned, nor stored — the grant leaks out of the \
                         scratch-pool cycle (DESIGN §14); call `recycle` or let the \
                         allocation escape"
                    ),
                ));
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_catalog_extracts_section_9_rows_only() {
        let design = "\
## 8. Other\n| `jigsaw_not_this` | c | — | x |\n\n## 9. Observability\n\n\
| Metric | Type |\n|---|---|\n| `jigsaw_alloc_grants_total` | counter |\n\
| `par_runs_total` | counter |\n\n## 10. Next\n| `jigsaw_after` | c |\n";
        let rows = design_catalog(design);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "jigsaw_alloc_grants_total");
    }

    #[test]
    fn readme_verb_fence_is_found_and_filtered() {
        let readme = "\
# Title\n\n### Serve protocol & metrics\n\nintro text\n\n```text\n\
success: OK <VERB>\nALLOC <id> <size>  -> OK GRANT\n   -> continuation\n\
QUIT -> OK BYE\n```\n";
        let (_, verbs) = readme_verbs(readme).expect("fence");
        let names: Vec<&str> = verbs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ALLOC", "QUIT"]);
    }

    #[test]
    fn readme_err_codes_filter_out_uppercase_snippets() {
        let readme = "\
Error codes are a closed lowercase set — `denied`, `bad-request` — and\n\
`OK METRICS <n>` is the only multi-line reply.\n\nnext paragraph\n";
        let (_, codes) = readme_err_codes(readme).expect("paragraph");
        let names: Vec<&str> = codes.iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(names, vec!["denied", "bad-request"]);
    }
}
