// Seeded R10 violation. The test lints this file as
// `crates/bench/src/fixture.rs` — one of the experiment-driver crates
// whose locally bound `allocate(...)` results must re-enter the
// scratch-pool cycle.

// Fires: the grant is bound, peeked at, and dropped — never recycled,
// returned, or stored.
fn leaks(alloc: &mut dyn Allocator, state: &mut SystemState) {
    let got = alloc.allocate(state, &req(1));
    observe(got.is_ok());
}

// Clean: the binding is recycled back into the pool.
fn recycled(alloc: &mut dyn Allocator, state: &mut SystemState, pool: &mut ScratchPool) {
    let got = alloc.allocate(state, &req(2));
    pool.recycle(got);
}

// Clean: the binding escapes (returned to the caller).
fn escapes(alloc: &mut dyn Allocator, state: &mut SystemState) -> Grant {
    let grant = alloc.allocate(state, &req(3));
    grant
}
