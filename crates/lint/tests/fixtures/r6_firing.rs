// Seeded R6 violations. The test lints this file as
// `crates/net/src/engine.rs`, the one file whose `Outcome` constructions
// the durability-ordering rule audits.

struct Engine;

impl Engine {
    // Fires: journals (commit_grant) but pins `durable: false`.
    fn grant_dead(&mut self) -> Outcome {
        self.persist.commit_grant(record());
        Outcome { reply: ok(), durable: false }
    }

    // Fires: journals transitively (via journal_one -> append) but the
    // literal has no `durable` field at all.
    fn grant_missing(&mut self) -> Outcome {
        self.journal_one();
        Outcome { reply: ok() }
    }

    // Clean: the flag is computed from persist state.
    fn grant_live(&mut self) -> Outcome {
        let staged = self.persist.pending_records();
        self.persist.commit_grant(record());
        Outcome { reply: ok(), durable: self.persist.pending_records() > staged }
    }

    fn journal_one(&mut self) {
        self.persist.append(record());
    }

    // Fires: a discarded flush result hides a failed fsync.
    fn shutdown(&mut self) {
        let _ = self.persist.flush();
    }
}
