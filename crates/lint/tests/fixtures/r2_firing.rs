// Fixture: narrowing casts on id/capacity arithmetic.
fn ids(nodes: &[u64]) -> Vec<u32> {
    let first = nodes[0] as u32;
    let count = nodes.len() as u16;
    vec![first, u32::from(count)]
}
