// Fixture: reads and audited-entry-point calls are fine anywhere.
fn inspect(state: &SystemState, n: NodeId) -> bool {
    state.node_owner(n).is_none()
}

fn grant(state: &mut SystemState, alloc: &Allocation) {
    claim_allocation(state, alloc);
}
