// Fixture: checked alternatives, test-scoped panics, and allowed idioms.
fn read_config(path: &str) -> Option<u32> {
    let text = std::fs::read_to_string(path).ok()?;
    text.trim().parse().ok()
}

fn fallback(v: Option<u32>) -> u32 {
    v.unwrap_or(7) // unwrap_or is not unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        super::read_config("x").unwrap();
        panic!("fine here");
    }
}
