// Seeded R9 fixture. The test lints this file as
// `crates/net/src/protocol.rs` against a synthetic README whose grammar
// fence omits FREE and documents a phantom PING, and whose error-code
// paragraph omits `busy`. The QUIT usage below also fails the structural
// HELP check (it does not begin with its verb).

pub struct Verb {
    pub name: &'static str,
    pub usage: &'static str,
}

pub const VERBS: &[Verb] = &[
    Verb { name: "ALLOC", usage: "ALLOC <id> <size>" },
    Verb { name: "FREE", usage: "FREE <id>" },
    Verb { name: "QUIT", usage: "BYE" },
];

pub enum ErrCode {
    Denied,
    Busy,
}

impl ErrCode {
    fn as_str(&self) -> &'static str {
        match self {
            ErrCode::Denied => "denied",
            ErrCode::Busy => "busy",
        }
    }
}
