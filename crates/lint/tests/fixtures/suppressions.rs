// Fixture: suppression round-trips — waived, reason-less, stale, wrong-rule.
fn guarded(n: usize) -> u32 {
    // jigsaw-lint: allow(R2) -- clamped by the caller to fit
    n as u32
}

fn reasonless(v: Option<u32>) -> u32 {
    v.unwrap() // jigsaw-lint: allow(R1)
}

// jigsaw-lint: allow(R5) -- nothing unsafe on the next line
fn stale() {}
