// Fixture: a grant-returning pub fn without #[must_use].
pub fn allocate(state: &mut SystemState, req: &JobRequest) -> Result<Allocation, Reject> {
    plan(state, req)
}
