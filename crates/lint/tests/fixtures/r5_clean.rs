// Fixture: safe code referring to "unsafe" only in strings and comments.
fn describe() -> &'static str {
    "this crate forbids unsafe code"
}
