// Fixture: the reasoned #[must_use] form satisfies R4.
#[must_use = "the grant has already claimed resources"]
pub fn allocate(state: &mut SystemState, req: &JobRequest) -> Result<Allocation, Reject> {
    plan(state, req)
}

// Results that are neither grants nor persist I/O need no attribute.
pub fn parse(text: &str) -> Result<u32, String> {
    text.parse().map_err(|_| "bad".to_string())
}
