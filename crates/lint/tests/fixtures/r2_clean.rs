// Fixture: widening casts and checked conversions are fine.
fn ids(nodes: &[u32]) -> (usize, u64, f64, Option<u16>) {
    let as_usize = nodes[0] as usize;
    let as_u64 = nodes[0] as u64;
    let as_f64 = nodes[0] as f64;
    let checked: Option<u16> = nodes[0].try_into().ok();
    (as_usize, as_u64, as_f64, checked)
}
