// Fixture: unsafe is banned everywhere, even inside test modules.
#[cfg(test)]
mod tests {
    #[test]
    fn sneaky() {
        let x = [1u8, 2];
        let first = unsafe { *x.as_ptr() };
        assert_eq!(first, 1);
    }
}
