// Seeded R8 violation. The test lints this file as
// `crates/obs/src/fixture.rs` against a synthetic DESIGN §9 catalog that
// lists `jigsaw_fixture_depth` (matched) and `jigsaw_fixture_stale_total`
// (never registered): the un-cataloged counter below fires here, the
// stale row fires on the DESIGN.md side.

fn register(reg: &Registry) {
    let hits = reg.counter("jigsaw_fixture_hits_total");
    let depth = reg.gauge_with("jigsaw_fixture_depth", &["pod"]);
    let pool = reg.counter("par_runs_total");
    keep(hits, depth, pool);
}
