// Fixture: every R1 pattern fires in library-crate source outside tests.
fn read_config(path: &str) -> u32 {
    let text = std::fs::read_to_string(path).unwrap();
    let n: u32 = text.trim().parse().expect("a number");
    if n == 0 {
        panic!("zero config");
    }
    n
}
