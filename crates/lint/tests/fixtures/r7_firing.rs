// Seeded R7 violations. The test lints this file as
// `crates/cli/src/locks.rs` (a non-lib path, so R1's unwrap rule stays
// out of the way and only the lock-discipline findings remain).

struct Shared {
    entries: Mutex<Vec<u32>>,
    ring: Mutex<Ring>,
}

impl Shared {
    fn forward(&self) {
        let a = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop((a, b));
    }

    // Fires (lock-order): acquires the same two Mutex fields in the
    // opposite order to `forward`, closing a cycle.
    fn backward(&self) {
        let b = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let a = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop((a, b));
    }

    // Fires (poison tolerance): a bare unwrap wedges the daemon if any
    // thread ever panicked while holding the lock.
    fn intolerant(&self) {
        let a = self.entries.lock().unwrap();
        drop(a);
    }
}
