// Fixture: direct state mutation outside the audited entry points.
fn grab(state: &mut SystemState, n: NodeId, j: JobId) {
    state.claim_node(n, j);
    state.release_node(n);
}
