//! Cross-file analysis tests (R6–R10): every rule has a seeded-violation
//! fixture it fires on, a reasoned waiver silences it, and a reason-less
//! waiver keeps the run dirty. The drift rules (R8/R9) are additionally
//! exercised *bidirectionally against the real workspace*: deleting a
//! catalog row, a registration, a protocol-table entry, or a README token
//! must each make the report unclean. The emitters (`--emit github`),
//! the waiver fixer (`--fix`), the result cache, and the parallel scan
//! are tested directly.
//!
//! Fixture files are plain text to the lint engine (never compiled), so
//! they can hold deliberate violations without affecting the build.

use jigsaw_lint::rules6_10::{ENGINE_FILE, PROTOCOL_FILE};
use jigsaw_lint::{
    analyze_sources, cache, collect_workspace, find_workspace_root, fix_stale_waivers,
    lint_workspace, render_github, render_text, Docs, Report,
};
use jigsaw_par::Pool;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

/// Run the full pipeline over in-memory `(rel_path, src)` pairs.
fn analyze(files: &[(&str, &str)], docs: &Docs) -> Report {
    let owned = files
        .iter()
        .map(|(r, s)| (r.to_string(), s.to_string()))
        .collect();
    analyze_sources(owned, docs, &Pool::sequential())
}

fn rules_fired(report: &Report) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

/// Insert `text` as its own line immediately above 1-based `line`.
fn insert_above(src: &str, line: u32, text: &str) -> String {
    let mut out = Vec::new();
    for (i, l) in src.lines().enumerate() {
        if i + 1 == line as usize {
            out.push(text.to_string());
        }
        out.push(l.to_string());
    }
    out.join("\n")
}

fn workspace() -> (Vec<(String, String)>, Docs) {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    collect_workspace(&root).expect("workspace sources readable")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jigsaw-analyze-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// --- R6 ---------------------------------------------------------------------

#[test]
fn r6_fires_on_dead_flag_missing_field_and_discarded_flush() {
    let report = analyze(&[(ENGINE_FILE, &fixture("r6_firing.rs"))], &Docs::default());
    assert_eq!(rules_fired(&report), ["R6", "R6", "R6"]);
    assert!(report.violations[0].message.contains("durable: false"));
    assert!(report.violations[1]
        .message
        .contains("without a `durable` field"));
    assert!(report.violations[2].message.contains("discards"));
}

#[test]
fn r6_is_silenced_by_a_reasoned_waiver_but_not_a_bare_one() {
    let src = fixture("r6_firing.rs");
    let first = analyze(&[(ENGINE_FILE, &src)], &Docs::default()).violations[0].line;

    let waived = insert_above(
        &src,
        first,
        "        // jigsaw-lint: allow(R6) -- fixture: fsync is covered one layer up",
    );
    let report = analyze(&[(ENGINE_FILE, &waived)], &Docs::default());
    assert_eq!(rules_fired(&report), ["R6", "R6"]);
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].rule, "R6");

    let bare = insert_above(&src, first, "        // jigsaw-lint: allow(R6)");
    let report = analyze(&[(ENGINE_FILE, &bare)], &Docs::default());
    assert!(!report.is_clean());
    assert!(report
        .violations
        .iter()
        .any(|v| v.message.contains("missing a `-- reason`")));
}

// --- R7 ---------------------------------------------------------------------

const R7_PATH: &str = "crates/cli/src/locks.rs";

#[test]
fn r7_fires_on_intolerant_lock_and_order_cycle() {
    let report = analyze(&[(R7_PATH, &fixture("r7_firing.rs"))], &Docs::default());
    assert_eq!(rules_fired(&report), ["R7", "R7"]);
    let messages: Vec<&str> = report
        .violations
        .iter()
        .map(|v| v.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("lock-order cycle")));
    assert!(messages.iter().any(|m| m.contains("poison")));
}

#[test]
fn r7_findings_are_individually_waivable() {
    let src = fixture("r7_firing.rs");
    let report = analyze(&[(R7_PATH, &src)], &Docs::default());
    for v in &report.violations {
        let waived = insert_above(
            &src,
            v.line,
            "        // jigsaw-lint: allow(R7) -- fixture: single-threaded harness",
        );
        let rerun = analyze(&[(R7_PATH, &waived)], &Docs::default());
        assert_eq!(rerun.violations.len(), report.violations.len() - 1);
        assert_eq!(rerun.waived.len(), 1);
    }
}

// --- R8 ---------------------------------------------------------------------

const R8_PATH: &str = "crates/obs/src/fixture.rs";
const R8_DESIGN: &str = "\
## 9. Observability

| Metric | Type |
|---|---|
| `jigsaw_fixture_depth` | gauge |
| `jigsaw_fixture_stale_total` | counter |

## 10. Next
";

#[test]
fn r8_fires_in_both_directions() {
    let docs = Docs {
        design: R8_DESIGN.to_string(),
        readme: String::new(),
    };
    let report = analyze(&[(R8_PATH, &fixture("r8_firing.rs"))], &docs);
    assert_eq!(rules_fired(&report), ["R8", "R8"]);
    // Sorted by file: the stale catalog row (DESIGN.md) comes first.
    assert_eq!(report.violations[0].file, "DESIGN.md");
    assert!(report.violations[0]
        .message
        .contains("jigsaw_fixture_stale_total"));
    assert_eq!(report.violations[1].file, R8_PATH);
    assert!(report.violations[1]
        .message
        .contains("jigsaw_fixture_hits_total"));
}

#[test]
fn r8_registration_finding_is_waivable_but_doc_drift_is_not() {
    let docs = Docs {
        design: R8_DESIGN.to_string(),
        readme: String::new(),
    };
    let src = fixture("r8_firing.rs");
    let site = analyze(&[(R8_PATH, &src)], &docs).violations[1].line;
    let waived = insert_above(
        &src,
        site,
        "    // jigsaw-lint: allow(R8) -- fixture: internal counter, not a catalog metric",
    );
    let report = analyze(&[(R8_PATH, &waived)], &docs);
    // The registration-side finding is waived; the DESIGN.md-anchored one
    // has no waiver channel — doc drift is fixed, not waived.
    assert_eq!(rules_fired(&report), ["R8"]);
    assert_eq!(report.violations[0].file, "DESIGN.md");
    assert_eq!(report.waived.len(), 1);
}

// --- R9 ---------------------------------------------------------------------

const R9_README: &str = "\
# Fixture

### Serve protocol & metrics

```text
ALLOC <id> <size>        -> OK GRANT <id> <nodes>
QUIT                     -> OK BYE
PING                     -> OK PONG
```

Error codes are a closed lowercase set — `denied` — and that is all.
";

#[test]
fn r9_fires_on_table_readme_and_help_drift() {
    let docs = Docs {
        design: String::new(),
        readme: R9_README.to_string(),
    };
    let report = analyze(&[(PROTOCOL_FILE, &fixture("r9_protocol.rs"))], &docs);
    assert_eq!(rules_fired(&report), ["R9", "R9", "R9", "R9"]);
    let messages: Vec<&str> = report
        .violations
        .iter()
        .map(|v| v.message.as_str())
        .collect();
    // Table entry with no README grammar line.
    assert!(messages
        .iter()
        .any(|m| m.contains("`FREE`") && m.contains("missing")));
    // README grammar line with no table entry.
    assert!(messages
        .iter()
        .any(|m| m.contains("`PING`") && m.contains("not in the")));
    // ErrCode variant missing from the README paragraph.
    assert!(messages
        .iter()
        .any(|m| m.contains("`busy`") && m.contains("missing")));
    // HELP usage that does not start with its verb.
    assert!(messages
        .iter()
        .any(|m| m.contains("`QUIT`") && m.contains("begin with the verb")));
}

#[test]
fn r9_help_finding_is_waivable() {
    let docs = Docs {
        design: String::new(),
        readme: R9_README.to_string(),
    };
    let src = fixture("r9_protocol.rs");
    let report = analyze(&[(PROTOCOL_FILE, &src)], &docs);
    let help = report
        .violations
        .iter()
        .find(|v| v.file == PROTOCOL_FILE)
        .expect("HELP structural finding");
    let waived = insert_above(
        &src,
        help.line,
        "    // jigsaw-lint: allow(R9) -- fixture: QUIT's reply line is the usage",
    );
    let rerun = analyze(&[(PROTOCOL_FILE, &waived)], &docs);
    assert_eq!(rerun.waived.len(), 1);
    assert!(rerun.violations.iter().all(|v| v.file == "README.md"));
}

// --- R10 --------------------------------------------------------------------

const R10_PATH: &str = "crates/bench/src/fixture.rs";

#[test]
fn r10_fires_only_on_the_leaked_binding() {
    let report = analyze(&[(R10_PATH, &fixture("r10_firing.rs"))], &Docs::default());
    assert_eq!(rules_fired(&report), ["R10"]);
    assert!(report.violations[0].message.contains("`got`"));
    assert!(report.violations[0].message.contains("recycled"));
}

#[test]
fn r10_is_silenced_by_a_reasoned_waiver() {
    let src = fixture("r10_firing.rs");
    let line = analyze(&[(R10_PATH, &src)], &Docs::default()).violations[0].line;
    let waived = insert_above(
        &src,
        line,
        "    // jigsaw-lint: allow(R10) -- fixture: occupancy is the product",
    );
    let report = analyze(&[(R10_PATH, &waived)], &Docs::default());
    assert!(report.is_clean());
    assert_eq!(report.waived.len(), 1);
}

// --- real-workspace bidirectional drift checks ------------------------------

#[test]
fn workspace_r8_catches_deleted_catalog_rows_and_renamed_registrations() {
    let (files, docs) = workspace();
    // Pick a cataloged metric registered in exactly one source file, so a
    // rename provably removes its only registration.
    let catalog: Vec<String> = docs
        .design
        .lines()
        .skip_while(|l| !l.starts_with("## 9"))
        .take_while(|l| !l.starts_with("## 10"))
        .filter_map(|l| {
            let rest = l.trim_start().strip_prefix("| `")?;
            Some(rest[..rest.find('`')?].to_string())
        })
        .filter(|n| n.starts_with("jigsaw_"))
        .collect();
    let (name, file_idx) = catalog
        .iter()
        .find_map(|n| {
            let needle = format!("\"{n}\"");
            let hits: Vec<usize> = files
                .iter()
                .enumerate()
                .filter(|(_, (_, s))| s.contains(&needle))
                .map(|(i, _)| i)
                .collect();
            (hits.len() == 1).then(|| (n.clone(), hits[0]))
        })
        .expect("a metric registered in exactly one file");

    // Direction 1: delete the catalog row — the registration is orphaned.
    let gutted = Docs {
        design: docs
            .design
            .lines()
            .filter(|l| !l.contains(&format!("`{name}`")))
            .collect::<Vec<_>>()
            .join("\n"),
        readme: docs.readme.clone(),
    };
    let report = analyze_sources(files.clone(), &gutted, &Pool::sequential());
    assert!(!report.is_clean());
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == "R8" && v.message.contains(&name)));

    // Direction 2: rename the registration — the catalog row goes stale
    // and the new name is un-cataloged.
    let mut renamed = files.clone();
    renamed[file_idx].1 = renamed[file_idx]
        .1
        .replace(&format!("\"{name}\""), &format!("\"{name}_zzz\""));
    let report = analyze_sources(renamed, &docs, &Pool::sequential());
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == "R8" && v.file == "DESIGN.md" && v.message.contains(&name)));
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == "R8" && v.message.contains("_zzz")));
}

#[test]
fn workspace_r9_catches_readme_and_table_drift() {
    let (files, docs) = workspace();

    // Direction 1: drop `busy` from the README error-code paragraph.
    let gutted = Docs {
        design: docs.design.clone(),
        readme: docs.readme.replace("`busy`", "`internal`"),
    };
    let report = analyze_sources(files.clone(), &gutted, &Pool::sequential());
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == "R9" && v.message.contains("`busy`")));

    // Direction 2: rename a table entry — README documents a ghost verb
    // and the new spelling has no grammar line.
    let mut renamed = files.clone();
    let proto = renamed
        .iter_mut()
        .find(|(rel, _)| rel == PROTOCOL_FILE)
        .expect("protocol file");
    proto.1 = proto.1.replace("\"QUIT\"", "\"QUIT-X\"");
    let report = analyze_sources(renamed, &docs, &Pool::sequential());
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == "R9" && v.message.contains("`QUIT`")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == "R9" && v.message.contains("`QUIT-X`")));
}

// --- pipeline infrastructure ------------------------------------------------

#[test]
fn parallel_and_sequential_scans_are_byte_identical() {
    let (files, docs) = workspace();
    let seq = analyze_sources(files.clone(), &docs, &Pool::sequential());
    let par = analyze_sources(files, &docs, &Pool::new(4));
    assert_eq!(render_text(&seq), render_text(&par));
    assert!(
        seq.is_clean(),
        "workspace must be clean:\n{}",
        render_text(&seq)
    );
}

#[test]
fn github_emitter_renders_one_annotation_per_finding() {
    let report = analyze(&[(ENGINE_FILE, &fixture("r6_firing.rs"))], &Docs::default());
    let gh = render_github(&report);
    let annotations: Vec<&str> = gh.lines().filter(|l| l.starts_with("::error ")).collect();
    assert_eq!(annotations.len(), 3);
    for a in &annotations {
        assert!(a.starts_with(&format!("::error file={ENGINE_FILE},line=")));
        assert!(a.contains("title=jigsaw-lint R6::"));
    }
    // Stale waivers get their own annotation.
    let stale = analyze(
        &[(
            "crates/core/src/a.rs",
            "// jigsaw-lint: allow(R1) -- nothing here\nfn quiet() {}\n",
        )],
        &Docs::default(),
    );
    assert!(render_github(&stale).contains("title=jigsaw-lint stale-waiver::"));
}

#[test]
fn fix_deletes_stale_waivers_and_is_idempotent() {
    let dir = tmpdir("fix");
    std::fs::create_dir_all(dir.join("crates/cli/src")).unwrap();
    let file = dir.join("crates/cli/src/main.rs");
    std::fs::write(
        &file,
        "fn main() {\n    // jigsaw-lint: allow(R1) -- stale: nothing unwraps\n    \
         let x = 1;\n    tick(x); // jigsaw-lint: allow(R2) -- also stale\n}\n",
    )
    .unwrap();

    let report = lint_workspace(&dir).unwrap();
    assert_eq!(report.unused_suppressions.len(), 2);
    assert_eq!(fix_stale_waivers(&dir, &report).unwrap(), 2);

    let after = std::fs::read_to_string(&file).unwrap();
    assert!(!after.contains("jigsaw-lint:"), "waivers gone:\n{after}");
    assert!(after.contains("    tick(x);"), "code kept:\n{after}");

    let clean = lint_workspace(&dir).unwrap();
    assert!(clean.is_clean());
    assert_eq!(fix_stale_waivers(&dir, &clean).unwrap(), 0);
    assert_eq!(std::fs::read_to_string(&file).unwrap(), after);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_round_trips_and_invalidates_on_content_change() {
    let files = vec![(
        "crates/core/src/a.rs".to_string(),
        "fn ok() { go(); }\n".to_string(),
    )];
    let docs = Docs::default();
    let key = cache::workspace_key(&files, &docs);
    let report = analyze_sources(files.clone(), &docs, &Pool::sequential());

    let dir = tmpdir("cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("analyze.cache");
    cache::store(&path, key, &report).unwrap();
    let hit = cache::load(&path, key).expect("cache hit on unchanged inputs");
    assert_eq!(render_text(&hit), render_text(&report));

    let mut touched = files.clone();
    touched[0].1.push_str("// comment\n");
    let key2 = cache::workspace_key(&touched, &docs);
    assert_ne!(key, key2, "content change must change the key");
    assert!(cache::load(&path, key2).is_none(), "stale cache must miss");
    let _ = std::fs::remove_dir_all(&dir);
}
