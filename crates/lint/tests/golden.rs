//! Golden-fixture tests: every rule has a known-firing and a known-clean
//! sample under `tests/fixtures/`, the suppression grammar round-trips,
//! the JSON report parses, and — the acceptance criterion — the workspace
//! itself is clean.
//!
//! Fixture files are plain text to the lint engine (they are never
//! compiled), so they can contain deliberate violations, including
//! `unsafe`, without affecting the build.

use jigsaw_lint::rules::FileReport;
use jigsaw_lint::{find_workspace_root, lint_source, lint_workspace, render_json, Report};
use std::path::Path;

/// Lint a fixture as if it were library-crate source.
fn lint_fixture(name: &str) -> FileReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    lint_source(&format!("crates/core/src/{name}"), &src)
}

fn rules_fired(report: &FileReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn r1_fires_and_stays_quiet() {
    assert_eq!(
        rules_fired(&lint_fixture("r1_firing.rs")),
        ["R1", "R1", "R1"]
    );
    assert_eq!(rules_fired(&lint_fixture("r1_clean.rs")), [""; 0]);
}

#[test]
fn r2_fires_and_stays_quiet() {
    assert_eq!(rules_fired(&lint_fixture("r2_firing.rs")), ["R2", "R2"]);
    assert_eq!(rules_fired(&lint_fixture("r2_clean.rs")), [""; 0]);
}

#[test]
fn r3_fires_and_stays_quiet() {
    assert_eq!(rules_fired(&lint_fixture("r3_firing.rs")), ["R3", "R3"]);
    assert_eq!(rules_fired(&lint_fixture("r3_clean.rs")), [""; 0]);
}

#[test]
fn r3_is_quiet_inside_the_allowlist() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r3_firing.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let report = lint_source("crates/topology/src/state.rs", &src);
    assert_eq!(rules_fired(&report), [""; 0]);
}

#[test]
fn r4_fires_and_stays_quiet() {
    assert_eq!(rules_fired(&lint_fixture("r4_firing.rs")), ["R4"]);
    assert_eq!(rules_fired(&lint_fixture("r4_clean.rs")), [""; 0]);
}

#[test]
fn r5_fires_and_stays_quiet() {
    // `unsafe` is flagged even inside `#[cfg(test)]`.
    assert_eq!(rules_fired(&lint_fixture("r5_firing.rs")), ["R5"]);
    assert_eq!(rules_fired(&lint_fixture("r5_clean.rs")), [""; 0]);
}

#[test]
fn suppression_round_trip() {
    let report = lint_fixture("suppressions.rs");
    // The reason-less waiver keeps its finding alive (with a pointer at
    // the broken comment); everything else waived or reported as stale.
    assert_eq!(rules_fired(&report), ["R1"]);
    assert!(report.violations[0]
        .message
        .contains("missing a `-- reason`"));
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].rule, "R2");
    assert_eq!(report.waived[0].reason, "clamped by the caller to fit");
    // The R5 waiver matches nothing and is reported stale.
    assert_eq!(report.unused_suppressions.len(), 1);
}

#[test]
fn violation_positions_are_exact() {
    let report = lint_fixture("r1_firing.rs");
    let v = &report.violations[0];
    // Line 3 of the fixture: `    let text = ... .unwrap();`
    assert_eq!((v.line, v.rule), (3, "R1"));
    assert!(v.col > 1);
    assert_eq!(v.file, "crates/core/src/r1_firing.rs");
}

#[test]
fn json_report_parses_with_serde_json() {
    let mut report = Report::default();
    for fixture in ["r1_firing.rs", "r2_firing.rs", "suppressions.rs"] {
        let file = lint_fixture(fixture);
        report.unused_suppressions.extend(
            file.unused_suppressions
                .iter()
                .map(|&l| (fixture.to_string(), l)),
        );
        report.violations.extend(file.violations);
        report.waived.extend(file.waived);
        report.files_scanned += 1;
    }
    let json = render_json(&report);
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let arr_len = |key: &str| value.get(key).and_then(|v| v.as_array()).map(<[_]>::len);
    assert_eq!(
        value.get("files_scanned"),
        Some(&serde_json::Value::UInt(3))
    );
    assert_eq!(value.get("clean"), Some(&serde_json::Value::Bool(false)));
    assert_eq!(arr_len("violations"), Some(report.violations.len()));
    assert_eq!(arr_len("waived"), Some(report.waived.len()));
    assert_eq!(arr_len("unused_suppressions"), Some(1));
    // Messages contain backticks and parens; spot-check escaping survived.
    let first_msg = value
        .get("violations")
        .and_then(|v| v.as_array())
        .and_then(<[_]>::first)
        .and_then(|v| v.get("message"))
        .and_then(|m| m.as_str())
        .expect("violations[0].message");
    assert!(first_msg.contains("unwrap"));
}

/// The acceptance criterion, enforced by `cargo test`: the workspace has
/// zero violations and zero stale suppressions — exactly what
/// `cargo run -p jigsaw-lint -- --deny` checks in CI.
#[test]
fn workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 100, "scan looks truncated");
    let rendered = jigsaw_lint::render_text(&report);
    assert!(report.is_clean(), "workspace not lint-clean:\n{rendered}");
}
