//! Lexer robustness properties.
//!
//! Random well-formed fragment mixes — raw strings with 0–3 hashes,
//! escaped strings, nested block comments, doc comments, suppression
//! comments, `#[cfg(test)]` items, char/lifetime/numeric literals — are
//! concatenated into sources and the lexer must:
//!
//! * never panic (also on arbitrary prefix truncations, which produce
//!   unterminated strings, comments, and attributes),
//! * emit tokens at strictly increasing `(line, col)` positions,
//! * round-trip string-literal contents in order, without letting the
//!   `jigsaw-lint:` marker inside strings, block comments, or doc
//!   comments register as a suppression,
//! * attribute `#[cfg(test)]` item bodies (and nothing else) to
//!   `in_test`.

use jigsaw_lint::lexer::lex;
use proptest::prelude::*;

/// One generated source fragment plus what the lexer must recover.
struct Frag {
    src: String,
    /// Expected `Kind::Str` contents, in order.
    strings: Vec<String>,
    /// Expected suppression-comment count.
    suppressions: usize,
    /// Occurrences of the `marker_test` ident (must be `in_test`).
    test_markers: usize,
}

fn frag(kind: u8, seed: u32, hashes: usize) -> Frag {
    let mut f = Frag {
        src: String::new(),
        strings: Vec::new(),
        suppressions: 0,
        test_markers: 0,
    };
    match kind {
        0 => f.src = format!("let id{seed} = r#type;"),
        1 => f.src = "x -> y :: z . w ( ) ;".to_string(),
        2 => {
            // Raw string; for >= 1 hash the content embeds a quote and a
            // shorter hash run that must NOT terminate it.
            let content = if hashes == 0 {
                format!("raw jigsaw-lint: allow(R1) -- {seed}")
            } else {
                format!(
                    "raw \"q{}\" jigsaw-lint: allow(R1) -- {seed}",
                    "#".repeat(hashes - 1)
                )
            };
            let h = "#".repeat(hashes);
            f.src = format!("let r{seed} = r{h}\"{content}\"{h};");
            f.strings.push(content);
        }
        3 => {
            // Plain string with an escaped quote; contents are recorded
            // with escapes unprocessed.
            let content = format!("esc \\\" jigsaw-lint: allow(R2) -- {seed}");
            f.src = format!("let s{seed} = \"{content}\";");
            f.strings.push(content);
        }
        4 => f.src = format!("/* outer {seed} /* jigsaw-lint: allow(R3) -- hidden */ tail */"),
        5 => {
            f.src = "// jigsaw-lint: allow(R1, R2) -- seeded".to_string();
            f.suppressions = 1;
        }
        6 => f.src = "/// jigsaw-lint: allow(R4) -- doc text, not a waiver".to_string(),
        7 => {
            f.src = format!("#[cfg(test)]\nmod t{seed} {{ fn f() {{ marker_test(); }} }}");
            f.test_markers = 1;
        }
        8 => {
            f.src = format!(
                "fn live{seed}<'a>(x: &'a str) {{ marker_live('x', 1.5e-3, 0x{seed:x}); }}"
            );
        }
        _ => {
            f.src = format!("let b{seed} = b\"bytes {seed}\";");
            f.strings.push(format!("bytes {seed}"));
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn lexer_is_total_and_structure_preserving(
        frags in prop::collection::vec((0u8..10, any::<u32>(), 0usize..=3), 1..24),
    ) {
        let parts: Vec<Frag> = frags.iter().map(|&(k, s, h)| frag(k, s, h)).collect();
        let src = parts
            .iter()
            .map(|f| f.src.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let (toks, sups) = lex(&src);

        // Token positions strictly increase.
        for w in toks.windows(2) {
            prop_assert!(
                (w[0].line, w[0].col) < (w[1].line, w[1].col),
                "span went backwards: {}:{} then {}:{} in\n{}",
                w[0].line, w[0].col, w[1].line, w[1].col, src
            );
        }

        // String contents round-trip, in order.
        let expected: Vec<&str> = parts
            .iter()
            .flat_map(|f| f.strings.iter().map(String::as_str))
            .collect();
        let got: Vec<&str> = toks.iter().filter_map(|t| t.str_lit()).collect();
        prop_assert_eq!(got, expected);

        // Only real `//` waiver comments register; the marker inside
        // strings, block comments, and doc comments stays inert.
        let want: usize = parts.iter().map(|f| f.suppressions).sum();
        prop_assert_eq!(sups.len(), want);
        for s in &sups {
            prop_assert_eq!(&s.rules, &["R1", "R2"]);
            prop_assert_eq!(&s.reason, "seeded");
        }

        // `#[cfg(test)]` bodies — and nothing else — are `in_test`.
        let test_marks: Vec<_> = toks
            .iter()
            .filter(|t| t.ident() == Some("marker_test"))
            .collect();
        prop_assert_eq!(
            test_marks.len(),
            parts.iter().map(|f| f.test_markers).sum::<usize>()
        );
        prop_assert!(test_marks.iter().all(|t| t.in_test));
        prop_assert!(toks
            .iter()
            .filter(|t| t.ident() == Some("marker_live"))
            .all(|t| !t.in_test));
    }

    #[test]
    fn lexer_is_total_on_truncated_sources(
        frags in prop::collection::vec((0u8..10, any::<u32>(), 0usize..=3), 1..8),
        cut in any::<u32>(),
    ) {
        let src = frags
            .iter()
            .map(|&(k, s, h)| frag(k, s, h).src)
            .collect::<Vec<_>>()
            .join("\n");
        let chars: Vec<char> = src.chars().collect();
        let cut = (cut as usize) % (chars.len() + 1);
        let truncated: String = chars[..cut].iter().collect();
        // Unterminated strings, comments, and attributes must still lex
        // without panicking, with monotone spans.
        let (toks, _) = lex(&truncated);
        for w in toks.windows(2) {
            prop_assert!((w[0].line, w[0].col) < (w[1].line, w[1].col));
        }
    }
}
