//! The Jigsaw allocator — Algorithm 1 of the paper.
//!
//! `GET_ALLOCATION` first enumerates two-level (single-subtree) shapes
//! `(L_T, n_L, n_L^r)` with `L_T·n_L + n_L^r = size`, trying every pod for
//! each; if no single subtree fits, it enumerates three-level shapes
//! `(T, n_T, n_T^r)` with `n_L | n_T` where `n_L` is pinned to the full leaf
//! size — the restriction of §4 that simultaneously tames the search space
//! and the external fragmentation of free nodes.
//!
//! Shape enumeration order is densest-first (`n_L` descending at two
//! levels, `L_T` descending at three levels): a job is packed onto as few
//! leaves/pods as legally possible, which keeps fully free leaves — the
//! currency of three-level allocations — intact for future jobs.

use crate::alloc::{claim_allocation, Allocation, Shape};
use crate::allocator::{Allocator, Decision};
use crate::job::JobRequest;
use crate::reject::{FitHintCache, Reject, RejectReason};
use crate::scratch::SearchScratch;
use crate::search::{find_three_level_full, find_two_level, Budget, Exclusive};
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::{FatTree, SystemState};

/// The Jigsaw job-isolating allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct JigsawAllocator {
    steps: u64,
    widest_first: bool,
    scratch: SearchScratch,
    fit_hint: FitHintCache,
}

impl JigsawAllocator {
    /// Build a Jigsaw allocator for `tree`.
    ///
    /// # Panics
    /// If `tree` is not full bandwidth: Jigsaw's guarantee — every partition
    /// is rearrangeable non-blocking — only exists on full-bandwidth trees.
    pub fn new(tree: &FatTree) -> Self {
        assert!(
            tree.is_full_bandwidth(),
            "Jigsaw requires a full-bandwidth fat-tree (m1 == w2, m2 == w3)"
        );
        JigsawAllocator {
            steps: 0,
            widest_first: false,
            scratch: SearchScratch::default(),
            fit_hint: FitHintCache::new(),
        }
    }

    /// Ablation constructor (DESIGN.md §6): enumerate shapes widest-first
    /// (`n_L` ascending — jobs spread over as many leaves as possible)
    /// instead of the default densest-first order.
    pub fn with_widest_first_order(tree: &FatTree) -> Self {
        let mut a = Self::new(tree);
        a.widest_first = true;
        a
    }

    /// The search of Algorithm 1, without committing resources. Public so
    /// tests and the experiment harness can inspect placements.
    pub fn find_shape(&mut self, state: &SystemState, size: u32) -> Option<Shape> {
        let mut budget = Budget::unlimited();
        let shape = find_jigsaw_shape_ordered(
            state,
            &mut self.scratch,
            size,
            &mut budget,
            self.widest_first,
        );
        self.steps = budget.spent();
        shape
    }

    /// The search of Algorithm 1, claiming the placement on success. The
    /// body behind [`Allocator::decide`], without the fragmentation-hint
    /// wrapping — which is also what the hint's own empty-machine probe
    /// runs (it must not recurse into another probe).
    fn search_claim(
        &mut self,
        state: &mut SystemState,
        req: &JobRequest,
    ) -> Result<Allocation, RejectReason> {
        if req.size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if req.size > state.free_node_count() {
            return Err(RejectReason::NoNodes {
                free: state.free_node_count(),
                requested: req.size,
            });
        }
        let shape = self
            .find_shape(state, req.size)
            .ok_or(RejectReason::NoShape)?;
        let alloc =
            Allocation::from_shape_with(&mut self.scratch, state, req.id, req.size, 0, shape);
        debug_assert_eq!(
            count_u32(alloc.nodes.len()),
            req.size,
            "Jigsaw guarantees N = N_r"
        );
        claim_allocation(state, &alloc);
        Ok(alloc)
    }
}

impl Allocator for JigsawAllocator {
    fn name(&self) -> &'static str {
        "Jigsaw"
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        match self.search_claim(state, req) {
            Ok(alloc) => Decision::Admit(alloc),
            Err(reason) => {
                let widest_first = self.widest_first;
                let tree = *state.tree();
                let hint = self.fit_hint.hint(req.size, req.bw_tenths, || {
                    let mut probe = JigsawAllocator {
                        steps: 0,
                        widest_first,
                        scratch: SearchScratch::default(),
                        fit_hint: FitHintCache::new(),
                    };
                    probe.search_claim(&mut SystemState::new(tree), req).is_ok()
                });
                Decision::Reject(Reject::with_hint(reason, hint))
            }
        }
    }

    fn last_search_steps(&self) -> u64 {
        self.steps
    }

    fn recycle(&mut self, alloc: Allocation) {
        self.scratch.recycle(alloc);
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        Box::new(self.clone())
    }
}

/// The shape search of Algorithm 1 in its default (densest-first) order.
pub fn find_jigsaw_shape(
    state: &SystemState,
    scratch: &mut SearchScratch,
    size: u32,
    budget: &mut Budget,
) -> Option<Shape> {
    find_jigsaw_shape_ordered(state, scratch, size, budget, false)
}

/// `1..=hi` ascending or descending without collecting — the shape
/// enumeration loops must not allocate.
fn ordered(hi: u32, ascending: bool) -> impl Iterator<Item = u32> {
    let fwd = if ascending { Some(1..=hi) } else { None };
    let rev = if ascending {
        None
    } else {
        Some((1..=hi).rev())
    };
    fwd.into_iter().flatten().chain(rev.into_iter().flatten())
}

fn find_jigsaw_shape_ordered(
    state: &SystemState,
    scratch: &mut SearchScratch,
    size: u32,
    budget: &mut Budget,
    widest_first: bool,
) -> Option<Shape> {
    let tree = state.tree();
    if size == 0 || size > state.free_node_count() {
        return None;
    }
    let w = tree.nodes_per_leaf();
    let l = tree.leaves_per_pod();
    let p = tree.num_pods();

    // Single-leaf placement: no inter-leaf traffic, no links needed, so the
    // leaf's uplink availability is irrelevant.
    if size <= w {
        for leaf in tree.leaves() {
            if state.free_nodes_on_leaf(leaf) >= size {
                return Some(Shape::SingleLeaf { leaf, n: size });
            }
            budget.spend();
        }
    }

    // Two-level (single-subtree) shapes, densest-first by default.
    for n_l in ordered(w.min(size), widest_first) {
        let l_t = size / n_l;
        let n_r = size % n_l;
        if l_t == 1 && n_r == 0 {
            continue; // single-leaf case handled above
        }
        if l_t + u32::from(n_r > 0) > l {
            continue;
        }
        for pod in tree.pods() {
            if state.free_nodes_in_pod(pod) < size {
                continue;
            }
            if let Some(pick) =
                find_two_level(state, &Exclusive, scratch, pod, l_t, n_l, n_r, budget)
            {
                return Some(Shape::TwoLevel {
                    pod,
                    n_l,
                    leaves: pick.leaves,
                    l2_set: pick.l2_set,
                    rem_leaf: pick.rem_leaf.map(|(leaf, s_r)| (leaf, n_r, s_r)),
                });
            }
            if budget.exhausted() {
                return None;
            }
        }
    }

    // Three-level shapes with full leaves (the §4 restriction): n_L = W.
    for l_t in ordered(l, widest_first) {
        let n_t = l_t * w;
        let t_full = size / n_t;
        if t_full == 0 {
            continue;
        }
        let n_rt = size % n_t;
        let (l_rt, n_rl) = (n_rt / w, n_rt % w);
        if t_full == 1 && n_rt == 0 {
            continue; // a single full tree is a two-level allocation
        }
        if t_full + u32::from(n_rt > 0) > p {
            continue;
        }
        if let Some(pick) =
            find_three_level_full(state, &Exclusive, scratch, l_t, t_full, l_rt, n_rl, budget)
        {
            return Some(pick.into_shape());
        }
        if budget.exhausted() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::release_allocation;
    use crate::conditions::check_shape;
    use jigsaw_topology::ids::JobId;

    fn setup(radix: u32) -> (SystemState, JigsawAllocator) {
        let tree = FatTree::maximal(radix).unwrap();
        let alloc = JigsawAllocator::new(&tree);
        (SystemState::new(tree), alloc)
    }

    #[test]
    #[should_panic(expected = "full-bandwidth")]
    fn rejects_tapered_trees() {
        let params = jigsaw_topology::FatTreeParams::new(4, 2, 1, 2, 2).unwrap();
        let _ = JigsawAllocator::new(&FatTree::new(params));
    }

    #[test]
    fn small_job_lands_on_single_leaf_without_links() {
        let (mut state, mut jig) = setup(8);
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 3))
            .unwrap();
        assert!(matches!(a.shape, Shape::SingleLeaf { n: 3, .. }));
        assert!(a.leaf_links.is_empty() && a.spine_links.is_empty());
        assert_eq!(a.nodes.len(), 3);
        state.assert_consistent();
    }

    #[test]
    fn exact_node_count_always() {
        // Fresh machine per size: Jigsaw's full-leaf restriction can
        // legitimately reject large jobs on a fragmented machine.
        for size in [1u32, 5, 13, 40, 100, 128] {
            let (mut state, mut jig) = setup(8);
            let a = jig
                .try_admit(&mut state, &JobRequest::new(JobId(size), size))
                .unwrap_or_else(|e| panic!("size {size} must fit on an empty 128-node tree: {e}"));
            assert_eq!(a.nodes.len() as u32, size, "N = N_r for size {size}");
            state.assert_consistent();
        }
        // And cumulatively with sizes that keep fitting.
        let (mut state, mut jig) = setup(8);
        for (i, size) in [1u32, 5, 13, 40, 64].iter().enumerate() {
            let a = jig
                .try_admit(&mut state, &JobRequest::new(JobId(i as u32), *size))
                .unwrap_or_else(|e| panic!("size {size} must fit cumulatively: {e}"));
            assert_eq!(a.nodes.len() as u32, *size);
            state.assert_consistent();
        }
    }

    #[test]
    fn every_structured_shape_satisfies_formal_conditions() {
        let (mut state, mut jig) = setup(8);
        let tree = *state.tree();
        for size in 1..=80u32 {
            let mut s = state.clone();
            if let Ok(a) = jig.try_admit(&mut s, &JobRequest::new(JobId(size), size)) {
                check_shape(&tree, &a.shape)
                    .unwrap_or_else(|v| panic!("size {size}: condition violated: {v}"));
            }
        }
        // And on a progressively filled system.
        let mut id = 1000;
        loop {
            id += 1;
            match jig.try_admit(&mut state, &JobRequest::new(JobId(id), 7)) {
                Ok(a) => {
                    check_shape(&tree, &a.shape)
                        .unwrap_or_else(|v| panic!("packed 7-node job violated: {v}"));
                }
                Err(_) => break,
            }
        }
        state.assert_consistent();
    }

    #[test]
    fn spread_small_job_over_leaves_when_no_leaf_fits() {
        // The paper's key advantage over TA: "a small job can be spread over
        // multiple leaves with fewer nodes".
        let (mut state, mut jig) = setup(4); // leaves of 2 nodes
        let tree = *state.tree();
        // Occupy one node on every leaf of pod 0 so no leaf has 2 free.
        for leaf in tree.leaves_of_pod(jigsaw_topology::ids::PodId(0)) {
            state.claim_node(tree.node_at(leaf, 0), JobId(99));
        }
        // Fill the remaining pods completely.
        for pod in tree.pods().skip(1) {
            for leaf in tree.leaves_of_pod(pod) {
                for node in tree.nodes_of_leaf(leaf) {
                    state.claim_node(node, JobId(99));
                }
            }
        }
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 2))
            .expect("2 nodes spread over two leaves of pod 0");
        match &a.shape {
            Shape::TwoLevel {
                n_l,
                leaves,
                rem_leaf,
                ..
            } => {
                assert_eq!(*n_l, 1);
                assert_eq!(leaves.len(), 2);
                assert!(rem_leaf.is_none());
            }
            other => panic!("expected spread two-level shape, got {other:?}"),
        }
    }

    #[test]
    fn three_level_used_when_no_pod_fits() {
        let (mut state, mut jig) = setup(4); // pods of 4 nodes
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 11))
            .unwrap();
        match &a.shape {
            Shape::ThreeLevel {
                trees, rem_tree, ..
            } => {
                assert!(trees.len() >= 2 || rem_tree.is_some());
            }
            other => panic!("11 of 16 nodes needs a three-level shape, got {other:?}"),
        }
        assert_eq!(a.nodes.len(), 11);
        check_shape(state.tree(), &a.shape).unwrap();
        state.assert_consistent();
    }

    #[test]
    fn allocate_release_restores_state() {
        let (mut state, mut jig) = setup(8);
        let before = state.clone();
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 37))
            .unwrap();
        assert_ne!(state, before);
        release_allocation(&mut state, &a);
        assert_eq!(state, before);
    }

    #[test]
    fn full_machine_job_fits_empty_machine() {
        let (mut state, mut jig) = setup(4);
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 16))
            .unwrap();
        assert_eq!(a.nodes.len(), 16);
        assert_eq!(state.free_node_count(), 0);
        check_shape(state.tree(), &a.shape).unwrap();
    }

    #[test]
    fn refuses_oversized_and_zero_jobs() {
        let (mut state, mut jig) = setup(4);
        let oversized = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 17))
            .unwrap_err();
        assert_eq!(
            oversized.reason,
            RejectReason::NoNodes {
                free: 16,
                requested: 17
            }
        );
        // 17 nodes never fit this 16-node machine, not even empty.
        assert!(!oversized.would_fit_empty);
        assert_eq!(
            jig.try_admit(&mut state, &JobRequest::new(JobId(1), 0))
                .unwrap_err()
                .reason,
            RejectReason::ZeroSize
        );
    }

    #[test]
    fn isolation_between_concurrent_jobs() {
        let (mut state, mut jig) = setup(8);
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 60))
            .unwrap();
        let b = jig
            .try_admit(&mut state, &JobRequest::new(JobId(2), 60))
            .unwrap();
        assert!(a.is_disjoint_from(&b), "Jigsaw partitions must be disjoint");
        state.assert_consistent();
    }

    #[test]
    fn search_steps_reported() {
        let (mut state, mut jig) = setup(8);
        let _ = jig.try_admit(&mut state, &JobRequest::new(JobId(1), 100));
        assert!(jig.last_search_steps() > 0);
    }
}
