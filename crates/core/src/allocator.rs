//! The [`Allocator`] trait every scheduling scheme implements, and the
//! [`SchedulerKind`] registry the simulator and experiment harness use.

use crate::alloc::{release_allocation, Allocation};
use crate::job::JobRequest;
use crate::reject::Reject;
use jigsaw_topology::{FatTree, SystemState};
use serde::{Deserialize, Serialize};

/// A node-and-link allocation policy.
///
/// Allocators are deliberately *stateless with respect to the cluster*: all
/// ownership lives in [`SystemState`], so the EASY-backfilling reservation
/// logic can replay future completions on a scratch clone of the state. The
/// only exception is scheme-internal bookkeeping (e.g. TA's sharing classes),
/// which is why the trait requires [`Allocator::clone_box`] — the replay
/// clones the allocator alongside the state.
pub trait Allocator: Send {
    /// Scheme name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Search for an allocation for `req` and, on success, claim it in
    /// `state`. Returns a typed [`Reject`] naming the binding constraint
    /// when no legal placement currently exists.
    ///
    /// On `Ok` the resources are already claimed in `state` — dropping the
    /// returned [`Allocation`] leaks them, hence `#[must_use]`.
    #[must_use = "the grant has already claimed nodes and links; dropping it leaks them"]
    fn allocate(&mut self, state: &mut SystemState, req: &JobRequest)
        -> Result<Allocation, Reject>;

    /// [`Allocator::allocate`] with the rejection reason erased — a
    /// migration shim for callers that only care whether placement
    /// succeeded.
    fn allocate_opt(&mut self, state: &mut SystemState, req: &JobRequest) -> Option<Allocation> {
        self.allocate(state, req).ok()
    }

    /// Release a previously granted allocation.
    fn release(&mut self, state: &mut SystemState, alloc: &Allocation) {
        release_allocation(state, alloc);
    }

    /// Re-apply an allocation this scheme previously produced (used when
    /// replaying hypothetical schedules onto scratch states). Schemes with
    /// internal bookkeeping (TA) must override to restore it.
    fn adopt(&mut self, state: &mut SystemState, alloc: &Allocation) {
        crate::alloc::claim_allocation(state, alloc);
    }

    /// Search effort (backtracking steps) spent by the most recent
    /// [`Allocator::allocate`] call; used by the scheduling-time analysis
    /// (Table 3) as a machine-independent effort metric.
    fn last_search_steps(&self) -> u64 {
        0
    }

    /// Clone into a boxed trait object (see the trait docs).
    fn clone_box(&self) -> Box<dyn Allocator>;

    /// A pristine allocator of the same scheme, as if newly constructed —
    /// used to answer "could this job fit an *empty* machine at all?".
    /// Schemes with internal bookkeeping (TA) must override this; for the
    /// stateless schemes a clone is already pristine.
    fn fresh_box(&self) -> Box<dyn Allocator> {
        self.clone_box()
    }
}

impl Clone for Box<dyn Allocator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The five scheduling schemes of the paper's evaluation (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Traditional, network-oblivious node allocation.
    Baseline,
    /// The paper's contribution (Algorithm 1).
    Jigsaw,
    /// Links as a Service [Zahavi et al. 2016].
    Laas,
    /// Topology-aware scheduling [Jain et al. 2017].
    Ta,
    /// Least-constrained with link sharing (bounding scheme).
    LcS,
}

impl SchedulerKind {
    /// All schemes, in the ordering the paper's figures use.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::Baseline,
        SchedulerKind::LcS,
        SchedulerKind::Jigsaw,
        SchedulerKind::Laas,
        SchedulerKind::Ta,
    ];

    /// The four job-isolating / interference-mitigating schemes (everything
    /// except Baseline) — the set that receives speed-up scenarios.
    pub const ISOLATING: [SchedulerKind; 4] = [
        SchedulerKind::LcS,
        SchedulerKind::Jigsaw,
        SchedulerKind::Laas,
        SchedulerKind::Ta,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "Baseline",
            SchedulerKind::Jigsaw => "Jigsaw",
            SchedulerKind::Laas => "LaaS",
            SchedulerKind::Ta => "TA",
            SchedulerKind::LcS => "LC+S",
        }
    }

    /// Construct the allocator for this scheme on `tree`.
    ///
    /// # Panics
    /// For the isolating schemes if `tree` is not full bandwidth — their
    /// guarantees only exist on full-bandwidth fat-trees.
    pub fn make(&self, tree: &FatTree) -> Box<dyn Allocator> {
        match self {
            SchedulerKind::Baseline => Box::new(crate::BaselineAllocator::new(tree)),
            SchedulerKind::Jigsaw => Box::new(crate::JigsawAllocator::new(tree)),
            SchedulerKind::Laas => Box::new(crate::LaasAllocator::new(tree)),
            SchedulerKind::Ta => Box::new(crate::TaAllocator::new(tree)),
            SchedulerKind::LcS => Box::new(crate::LcsAllocator::new(tree)),
        }
    }

    /// `true` iff this scheme guarantees complete network isolation.
    pub fn is_isolating(&self) -> bool {
        matches!(
            self,
            SchedulerKind::Jigsaw | SchedulerKind::Laas | SchedulerKind::Ta
        )
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(SchedulerKind::Jigsaw.name(), "Jigsaw");
        assert_eq!(SchedulerKind::LcS.to_string(), "LC+S");
        assert_eq!(SchedulerKind::ALL.len(), 5);
    }

    #[test]
    fn isolation_flags() {
        assert!(SchedulerKind::Jigsaw.is_isolating());
        assert!(SchedulerKind::Ta.is_isolating());
        assert!(!SchedulerKind::Baseline.is_isolating());
        // LC+S allows (negligible but nonzero) sharing, so it does not
        // guarantee isolation.
        assert!(!SchedulerKind::LcS.is_isolating());
    }
}
