//! The [`Allocator`] trait every scheduling scheme implements, and the
//! [`Scheme`] registry the simulator, CLI and experiment harness use.
//!
//! [`Scheme`] is the single naming authority for the paper's five
//! scheduling approaches: it carries the figure-label spelling
//! ([`Scheme::name`] / [`Display`](std::fmt::Display)), the accepted
//! command-line spellings ([`FromStr`](std::str::FromStr)), the JSON
//! encoding (serde, via the same label), and the two factories
//! ([`Scheme::make`] on an existing tree, [`Scheme::build`] straight from
//! [`FatTreeParams`]). Call sites must never match on scheme-name strings
//! — parse once at the boundary, pass `Scheme` everywhere after.

use crate::alloc::{release_allocation, Allocation};
use crate::audit::audit_system;
use crate::defrag::{MigrationPlan, PlanApplyError};
use crate::job::JobRequest;
use crate::reject::Reject;
use jigsaw_topology::{FatTree, FatTreeParams, SystemState};
use serde::{Deserialize, Serialize};

/// The three-way outcome of a scheduling decision.
///
/// The paper's Algorithm 1 only admits or rejects; the `Reconfigure` arm
/// is the repo's extension (ROADMAP item 3): when a request is rejected
/// *because of fragmentation* — not because the machine lacks raw capacity
/// — a bounded [`MigrationPlan`] can describe how to compact resident jobs
/// so the request fits. The plan is a proposal: nothing has been claimed
/// in the state yet, and the caller chooses whether to pay the migration
/// cost ([`Allocator::apply_plan`]) or treat the outcome as a rejection
/// ([`Decision::into_result`]).
#[must_use = "an Admit has already claimed resources and a Reconfigure awaits apply_plan; dropping the decision leaks or discards them"]
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The request was placed; resources are already claimed in the state.
    Admit(Allocation),
    /// No legal placement exists right now (typed reason plus the
    /// would-it-fit-empty fragmentation hint).
    Reject(Reject),
    /// No placement exists *as occupied*, but the attached plan migrates
    /// resident jobs so one does. Nothing is claimed until the plan is
    /// applied.
    Reconfigure(MigrationPlan),
}

impl Decision {
    /// Collapse to the two-outcome view: `Reconfigure` degrades to the
    /// rejection that triggered the plan (the plan is dropped — it claimed
    /// nothing). This is what callers that cannot migrate use.
    #[must_use = "an admitted grant has already claimed nodes and links; dropping it leaks them"]
    pub fn into_result(self) -> Result<Allocation, Reject> {
        match self {
            Decision::Admit(alloc) => Ok(alloc),
            Decision::Reject(reject) => Err(reject),
            Decision::Reconfigure(plan) => Err(plan.blocking),
        }
    }

    /// `true` for [`Decision::Admit`].
    pub fn is_admit(&self) -> bool {
        matches!(self, Decision::Admit(_))
    }

    /// Stable snake_case outcome label (`"admit"` / `"reject"` /
    /// `"reconfigure"`), for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Decision::Admit(_) => "admit",
            Decision::Reject(_) => "reject",
            Decision::Reconfigure(_) => "reconfigure",
        }
    }
}

/// A node-and-link allocation policy.
///
/// Allocators are deliberately *stateless with respect to the cluster*: all
/// ownership lives in [`SystemState`], so the EASY-backfilling reservation
/// logic can replay future completions on a scratch clone of the state. The
/// only exception is scheme-internal bookkeeping (e.g. TA's sharing classes),
/// which is why the trait requires [`Allocator::clone_box`] — the replay
/// clones the allocator alongside the state.
pub trait Allocator: Send {
    /// Scheme name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Decide the fate of `req`: search for a placement and, on
    /// [`Decision::Admit`], claim it in `state`. A failed search returns
    /// [`Decision::Reject`] with the typed reason and the
    /// would-it-fit-empty hint; allocators that plan migrations (the
    /// [`crate::Defragmenter`] wrapper) may instead return
    /// [`Decision::Reconfigure`] with a bounded, audited plan.
    ///
    /// On `Admit` the resources are already claimed in `state` — dropping
    /// the returned [`Allocation`] leaks them, hence `#[must_use]`.
    #[must_use = "an admitted grant has already claimed nodes and links; dropping the decision leaks them"]
    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision;

    /// Two-outcome convenience over [`Allocator::decide`]: admit or
    /// reject, with `Reconfigure` degraded to its blocking rejection.
    /// Call sites that cannot (or must not) migrate resident jobs use
    /// this; everything else matches on [`Decision`] directly.
    #[must_use = "the grant has already claimed nodes and links; dropping it leaks them"]
    fn try_admit(
        &mut self,
        state: &mut SystemState,
        req: &JobRequest,
    ) -> Result<Allocation, Reject> {
        self.decide(state, req).into_result()
    }

    /// Apply a [`MigrationPlan`] to `state`, one move at a time, keeping
    /// `live` (the caller's list of resident allocations, which must
    /// contain every move's `from` placement) in step, and **re-auditing
    /// the full system after every move**. On success the plan's admitted
    /// placement has been adopted too (and pushed onto `live`) and is
    /// returned — the caller must *not* re-decide the triggering request.
    ///
    /// The default implementation routes every mutation through
    /// [`Allocator::release`] / [`Allocator::adopt`], so wrappers with
    /// internal bookkeeping (TA's classes, the defragmenter's live list)
    /// stay consistent without overriding this.
    #[must_use = "an unapplied or failed plan leaves the admitted placement unclaimed"]
    fn apply_plan(
        &mut self,
        state: &mut SystemState,
        live: &mut Vec<Allocation>,
        plan: &MigrationPlan,
    ) -> Result<Allocation, PlanApplyError> {
        for m in &plan.moves {
            let Some(idx) = live.iter().position(|a| *a == m.from) else {
                return Err(PlanApplyError::StaleMove { job: m.job });
            };
            self.release(state, &m.from);
            self.adopt(state, &m.to);
            live[idx] = m.to.clone();
            let errors = audit_system(state, live);
            if !errors.is_empty() {
                return Err(PlanApplyError::AuditFailed { job: m.job, errors });
            }
        }
        self.adopt(state, &plan.admits);
        live.push(plan.admits.clone());
        let errors = audit_system(state, live);
        if !errors.is_empty() {
            return Err(PlanApplyError::AuditFailed {
                job: plan.admits.job,
                errors,
            });
        }
        Ok(plan.admits.clone())
    }

    /// Release a previously granted allocation.
    fn release(&mut self, state: &mut SystemState, alloc: &Allocation) {
        release_allocation(state, alloc);
    }

    /// Re-apply an allocation this scheme previously produced (used when
    /// replaying hypothetical schedules onto scratch states). Schemes with
    /// internal bookkeeping (TA) must override to restore it.
    fn adopt(&mut self, state: &mut SystemState, alloc: &Allocation) {
        crate::alloc::claim_allocation(state, alloc);
    }

    /// Dispose of a spent allocation (after [`Allocator::release`]),
    /// handing its vectors back to the scheme's internal buffer pools when
    /// it keeps any. Optional: the default drops the allocation to the
    /// global heap — correctness never depends on recycling, only the
    /// steady-state zero-allocation guarantee of the pooled schemes does.
    fn recycle(&mut self, alloc: Allocation) {
        drop(alloc);
    }

    /// Search effort (backtracking steps) spent by the most recent
    /// [`Allocator::decide`] call; used by the scheduling-time analysis
    /// (Table 3) as a machine-independent effort metric.
    fn last_search_steps(&self) -> u64 {
        0
    }

    /// Clone into a boxed trait object (see the trait docs).
    fn clone_box(&self) -> Box<dyn Allocator>;

    /// A pristine allocator of the same scheme, as if newly constructed —
    /// used to answer "could this job fit an *empty* machine at all?".
    /// Schemes with internal bookkeeping (TA) must override this; for the
    /// stateless schemes a clone is already pristine.
    fn fresh_box(&self) -> Box<dyn Allocator> {
        self.clone_box()
    }
}

impl Clone for Box<dyn Allocator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The five scheduling schemes of the paper's evaluation (§5.2).
///
/// Serialized (and parsed back) as the paper's figure label — `"Jigsaw"`,
/// `"LC+S"`, … — so JSON results stay human-readable and round-trip
/// through the same [`FromStr`](std::str::FromStr) the CLI uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Traditional, network-oblivious node allocation.
    Baseline,
    /// The paper's contribution (Algorithm 1).
    Jigsaw,
    /// Links as a Service [Zahavi et al. 2016].
    Laas,
    /// Topology-aware scheduling [Jain et al. 2017].
    Ta,
    /// Least-constrained with link sharing (bounding scheme).
    LcS,
}

impl Scheme {
    /// All schemes, in the ordering the paper's figures use.
    pub const ALL: [Scheme; 5] = [
        Scheme::Baseline,
        Scheme::LcS,
        Scheme::Jigsaw,
        Scheme::Laas,
        Scheme::Ta,
    ];

    /// The four job-isolating / interference-mitigating schemes (everything
    /// except Baseline) — the set that receives speed-up scenarios.
    pub const ISOLATING: [Scheme; 4] = [Scheme::LcS, Scheme::Jigsaw, Scheme::Laas, Scheme::Ta];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Jigsaw => "Jigsaw",
            Scheme::Laas => "LaaS",
            Scheme::Ta => "TA",
            Scheme::LcS => "LC+S",
        }
    }

    /// Construct the allocator for this scheme on `tree`.
    ///
    /// # Panics
    /// For the isolating schemes if `tree` is not full bandwidth — their
    /// guarantees only exist on full-bandwidth fat-trees.
    pub fn make(&self, tree: &FatTree) -> Box<dyn Allocator> {
        match self {
            Scheme::Baseline => Box::new(crate::BaselineAllocator::new(tree)),
            Scheme::Jigsaw => Box::new(crate::JigsawAllocator::new(tree)),
            Scheme::Laas => Box::new(crate::LaasAllocator::new(tree)),
            Scheme::Ta => Box::new(crate::TaAllocator::new(tree)),
            Scheme::LcS => Box::new(crate::LcsAllocator::new(tree)),
        }
    }

    /// Construct the allocator for this scheme on the tree described by
    /// `params` — the one-call factory for callers that start from
    /// structural parameters rather than a prebuilt [`FatTree`].
    ///
    /// # Panics
    /// As [`Scheme::make`], for isolating schemes on non-full-bandwidth
    /// parameters.
    pub fn build(&self, params: &FatTreeParams) -> Box<dyn Allocator> {
        self.make(&FatTree::new(*params))
    }

    /// `true` iff this scheme guarantees complete network isolation.
    pub fn is_isolating(&self) -> bool {
        matches!(self, Scheme::Jigsaw | Scheme::Laas | Scheme::Ta)
    }

    /// `true` iff jobs scheduled by this scheme benefit from isolation
    /// speed-up scenarios (§5.4.1) — everything except Baseline.
    pub fn benefits_from_isolation(&self) -> bool {
        !matches!(self, Scheme::Baseline)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Scheme`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    input: String,
}

impl std::fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheme `{}` (expected one of: baseline, jigsaw, laas, ta, lc+s)",
            self.input
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl std::str::FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Case-insensitive; accepts both the paper labels (`LC+S`, `LaaS`)
    /// and the flag-friendly spellings (`lcs`, `laas`).
    fn from_str(s: &str) -> Result<Scheme, ParseSchemeError> {
        match s.to_ascii_lowercase().as_str() {
            "baseline" => Ok(Scheme::Baseline),
            "jigsaw" => Ok(Scheme::Jigsaw),
            "laas" => Ok(Scheme::Laas),
            "ta" => Ok(Scheme::Ta),
            "lcs" | "lc+s" | "lc-s" => Ok(Scheme::LcS),
            _ => Err(ParseSchemeError {
                input: s.to_string(),
            }),
        }
    }
}

impl Serialize for Scheme {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for Scheme {
    fn from_value(v: &serde::Value) -> Result<Scheme, serde::DeError> {
        let s = String::from_value(v)?;
        s.parse()
            .map_err(|e: ParseSchemeError| serde::DeError::custom(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Scheme::Jigsaw.name(), "Jigsaw");
        assert_eq!(Scheme::LcS.to_string(), "LC+S");
        assert_eq!(Scheme::ALL.len(), 5);
    }

    #[test]
    fn isolation_flags() {
        assert!(Scheme::Jigsaw.is_isolating());
        assert!(Scheme::Ta.is_isolating());
        assert!(!Scheme::Baseline.is_isolating());
        // LC+S allows (negligible but nonzero) sharing, so it does not
        // guarantee isolation.
        assert!(!Scheme::LcS.is_isolating());
        assert!(Scheme::LcS.benefits_from_isolation());
        assert!(!Scheme::Baseline.benefits_from_isolation());
    }

    #[test]
    fn parse_accepts_paper_and_flag_spellings() {
        for s in Scheme::ALL {
            assert_eq!(s.name().parse::<Scheme>().unwrap(), s);
            assert_eq!(s.name().to_lowercase().parse::<Scheme>().unwrap(), s);
        }
        assert_eq!("lcs".parse::<Scheme>().unwrap(), Scheme::LcS);
        assert_eq!("lc-s".parse::<Scheme>().unwrap(), Scheme::LcS);
        let err = "fifo".parse::<Scheme>().unwrap_err();
        assert!(err.to_string().contains("fifo"));
    }

    #[test]
    fn serde_round_trips_as_paper_label() {
        for s in Scheme::ALL {
            let v = s.to_value();
            assert_eq!(v, serde::Value::Str(s.name().to_string()));
            assert_eq!(Scheme::from_value(&v).unwrap(), s);
        }
        assert!(Scheme::from_value(&serde::Value::Str("nope".into())).is_err());
    }

    #[test]
    fn build_constructs_matching_allocator() {
        let params = FatTreeParams::maximal(6).unwrap();
        for s in Scheme::ALL {
            assert_eq!(s.build(&params).name(), s.name());
        }
    }
}
