//! Migration planning: turning fragmentation rejects into
//! [`Decision::Reconfigure`](crate::Decision::Reconfigure) proposals.
//!
//! The paper's Algorithm 1 admits or rejects — which is exactly why
//! fragmented fat-tree states strand capacity a bounded set of migrations
//! would recover. This module computes those migrations:
//!
//! * [`plan_migrations`] searches, **on scratch clones** of the state and
//!   allocator, for a bounded eviction set whose re-placement compacts the
//!   machine enough to admit the blocked request. Two comparable search
//!   schemes are provided ([`PlanScheme`]): a greedy smallest-first
//!   compactor and a simulated-annealing improver over eviction orders
//!   (after Lan et al.'s neural simulated annealing — the classic
//!   Metropolis schedule is used here).
//! * [`MigrationPlan`] is the proposal: an ordered move list plus the
//!   proven placement for the triggering job. The move order is
//!   *sequentially applicable* — applying moves one at a time (release the
//!   old placement, adopt the new) never double-claims a node or link, so
//!   a daemon can journal each move and survive a crash mid-plan.
//! * [`Defragmenter`] wraps any [`Allocator`], tracks the live allocation
//!   set, and upgrades fragmentation rejects (see
//!   [`Reject::is_fragmentation`]) into `Reconfigure` decisions.
//!
//! # Plan soundness
//!
//! Every plan returned by [`plan_migrations`] was *executed* on a scratch
//! clone first: the evictions, the re-placements, and the triggering
//! admission all went through the real allocator, and the resulting scratch
//! state passed [`audit_system`] (node/link ownership balances, shape
//! conditions hold). The move order is then topologically sorted so each
//! move's destination is disjoint from every *later* move's source; a
//! cyclic dependency (jobs swapping places) aborts the plan rather than
//! risk a double-claim. Interference-freedom of the compacted placement is
//! re-proven at the call sites that can reach `jigsaw-routing`
//! (`route_permutation` on each moved partition); core's own audit already
//! enforces the formal shape conditions the proof rests on.

use crate::alloc::Allocation;
use crate::allocator::{Allocator, Decision};
use crate::audit::{audit_system, AuditError};
use crate::job::JobRequest;
use crate::reject::{Reject, RejectReason};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::SystemState;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One migration: move `job` from its current placement to a new one.
///
/// `from` must be the job's *exact* current allocation (the applier
/// validates this before releasing anything).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Migration {
    /// The job being moved.
    pub job: JobId,
    /// The placement it currently holds.
    pub from: Allocation,
    /// The placement it moves to.
    pub to: Allocation,
}

impl Migration {
    /// Nodes that must checkpoint/restart for this move — the unit the
    /// migration cost model charges for.
    pub fn nodes_moved(&self) -> u32 {
        jigsaw_topology::cast::count_u32(self.from.nodes.len())
    }
}

/// A bounded, audited list of migrations that makes a blocked request fit.
///
/// Produced by [`plan_migrations`]; carried by
/// [`Decision::Reconfigure`](crate::Decision::Reconfigure). Applying the
/// moves in order (see [`Allocator::apply_plan`]) and then adopting
/// [`MigrationPlan::admits`] yields a state in which the triggering job
/// runs on the proven placement — no re-search is needed (or allowed: the
/// placement was verified on the scratch clone, a fresh search might pick
/// a different one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The proven placement for the job that triggered the plan.
    pub admits: Allocation,
    /// The rejection Algorithm 1 alone produced (kept so callers that
    /// decline to migrate can degrade to the two-outcome view).
    pub blocking: Reject,
    /// The moves, in a sequentially-applicable order.
    pub moves: Vec<Migration>,
}

impl MigrationPlan {
    /// Total nodes that must migrate to execute this plan.
    pub fn nodes_moved(&self) -> u32 {
        self.moves.iter().map(Migration::nodes_moved).sum()
    }

    /// Migration cost under a per-node cost model: every moved node pays
    /// `cost_per_node` (checkpoint + restore + requeue), independent of
    /// distance — fat-tree bisection bandwidth makes transfer distance a
    /// second-order term.
    pub fn cost(&self, cost_per_node: f64) -> f64 {
        f64::from(self.nodes_moved()) * cost_per_node
    }
}

/// How [`plan_migrations`] searches the space of eviction sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlanScheme {
    /// Evict smallest-resident-first until the blocked request fits, then
    /// re-place the evicted jobs largest-first. One deterministic pass.
    Greedy,
    /// Start from the greedy eviction order and anneal it: swap two
    /// candidates per step, accept worse plans with Metropolis probability
    /// under a geometric cooling schedule, keep the cheapest valid plan
    /// (fewest nodes moved). Deterministic for a fixed `seed`.
    Anneal {
        /// Annealing steps (each evaluates one candidate plan).
        iters: u32,
        /// RNG seed; identical seeds yield identical plans.
        seed: u64,
    },
}

/// Bounds and scheme selection for [`plan_migrations`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefragConfig {
    /// Hard cap on evictions per plan (the paper-style bounded
    /// reconfiguration: a plan that needs more moves is not worth its
    /// disruption).
    pub max_moves: usize,
    /// Plan-search scheme.
    pub scheme: PlanScheme,
}

impl Default for DefragConfig {
    fn default() -> DefragConfig {
        DefragConfig {
            max_moves: 8,
            scheme: PlanScheme::Greedy,
        }
    }
}

/// Why applying a [`MigrationPlan`] failed. See
/// [`Allocator::apply_plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanApplyError {
    /// A move's `from` placement is not in the caller's live set — the
    /// plan was computed against a state that has since changed.
    StaleMove {
        /// The job whose placement went stale.
        job: JobId,
    },
    /// The post-move audit found inconsistencies (a planner bug: plans
    /// are audited on scratch before being returned).
    AuditFailed {
        /// The job whose move (or admission) broke the audit.
        job: JobId,
        /// What the audit found.
        errors: Vec<AuditError>,
    },
}

impl std::fmt::Display for PlanApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanApplyError::StaleMove { job } => {
                write!(f, "stale migration: job {} moved since planning", job.0)
            }
            PlanApplyError::AuditFailed { job, errors } => {
                write!(
                    f,
                    "audit failed after migrating job {} ({} error(s), first: {})",
                    job.0,
                    errors.len(),
                    errors
                        .first()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "none".into())
                )
            }
        }
    }
}

impl std::error::Error for PlanApplyError {}

/// Compute a migration plan that admits `req`, or `None` when no bounded
/// plan exists.
///
/// `alloc` and `state` are only cloned, never mutated; `live` is the full
/// resident allocation set (owning every claim in `state` besides
/// system-pinned nodes). `blocking` is the rejection the plain decision
/// produced — plans are only searched for occupancy-caused rejections
/// (shape/links/sharing/budget); `ZeroSize` and `NoNodes` return `None`
/// immediately, since no rearrangement conjures capacity.
pub fn plan_migrations(
    alloc: &dyn Allocator,
    state: &SystemState,
    live: &[Allocation],
    req: &JobRequest,
    blocking: Reject,
    cfg: &DefragConfig,
) -> Option<MigrationPlan> {
    if matches!(
        blocking.reason,
        RejectReason::ZeroSize | RejectReason::NoNodes { .. }
    ) {
        return None;
    }
    // Candidate victims ordered to vacate whole leaves cheapest-first.
    // Occupancy-class rejects are starved of *full leaves* (free nodes
    // exist, but scattered): an eviction only helps once it empties a
    // leaf completely, so size-ordered eviction is placement-blind and
    // wastes the move budget. Instead, rank leaves by how few allocated
    // nodes they hold (cheapest to empty), then list each leaf's resident
    // jobs smallest-first; a job spanning several leaves appears at its
    // best-ranked leaf. The greedy scheme evicts along this order; the
    // annealer uses it as its starting point.
    let order = leaf_coherent_order(state, live);

    match cfg.scheme {
        PlanScheme::Greedy => {
            evaluate_order(alloc, state, live, req, blocking, &order, cfg.max_moves)
                .map(|(plan, _)| plan)
        }
        PlanScheme::Anneal { iters, seed } => {
            anneal(alloc, state, live, req, blocking, order, cfg, iters, seed)
        }
    }
}

/// The eviction-candidate order that empties whole leaves cheapest-first.
///
/// A leaf's emptying cost is the **total size of every job touching it**
/// — not its allocated-node count: a leaf holding one node of a large
/// job is cheap-looking but expensive to vacate (the whole job must
/// move, surrendering nodes it held in other, fuller leaves). Leaves are
/// ranked by that cost ascending (ties by leaf id); each contributes its
/// resident jobs smallest-first (ties by job id), and a job spanning
/// several leaves is listed at its best-ranked leaf.
fn leaf_coherent_order(state: &SystemState, live: &[Allocation]) -> Vec<usize> {
    let tree = state.tree();
    let mut leaf_cost: HashMap<u32, u64> = HashMap::new();
    for a in live {
        let mut touched: Vec<u32> = a.nodes.iter().map(|&n| tree.leaf_of_node(n).0).collect();
        touched.sort_unstable();
        touched.dedup();
        for l in touched {
            *leaf_cost.entry(l).or_insert(0) += a.nodes.len() as u64;
        }
    }
    let mut leaves: Vec<(u64, u32)> = leaf_cost.iter().map(|(&l, &c)| (c, l)).collect();
    leaves.sort_unstable();
    let rank: HashMap<u32, usize> = leaves
        .iter()
        .enumerate()
        .map(|(r, &(_, l))| (l, r))
        .collect();
    let mut order: Vec<usize> = (0..live.len()).collect();
    order.sort_by_key(|&i| {
        let best = live[i]
            .nodes
            .iter()
            .map(|&n| rank[&tree.leaf_of_node(n).0])
            .min()
            .unwrap_or(usize::MAX);
        (best, live[i].nodes.len(), live[i].job.0)
    });
    order
}

/// Execute one candidate eviction order on scratch clones. Returns the
/// sequenced, audited plan and its score (nodes moved) or `None` when the
/// order yields no valid bounded plan.
#[allow(clippy::too_many_arguments)]
fn evaluate_order(
    alloc: &dyn Allocator,
    state: &SystemState,
    live: &[Allocation],
    req: &JobRequest,
    blocking: Reject,
    order: &[usize],
    max_moves: usize,
) -> Option<(MigrationPlan, u32)> {
    // Evict a growing prefix of `order`. A prefix where the request fits
    // but some evicted job cannot be re-homed is not a dead end — the next
    // eviction frees more room for BOTH the request and the re-placements
    // — so phase-2 failure falls through to a longer prefix instead of
    // aborting the whole order.
    'prefix: for k in 1..=max_moves.min(order.len()) {
        let mut scratch = state.clone();
        let mut salloc = alloc.clone_box();
        let evicted = &order[..k];
        for &idx in evicted {
            salloc.release(&mut scratch, &live[idx]);
        }

        // Phase 1: does the blocked request fit after these evictions?
        let Decision::Admit(admits) = salloc.decide(&mut scratch, req) else {
            continue 'prefix;
        };

        // Phase 2: re-place every evicted job. The re-placement order
        // decides which holes each job sees, and hence whether the move
        // set is *sequentially applicable* — jobs placed into each other's
        // old spots form a cyclic swap no one-move-at-a-time applier can
        // execute. Try a small deterministic family of orders; the first
        // one that yields a sound, acyclic plan wins. Largest-first leads
        // (big jobs have the fewest placement options; give them first
        // pick of the holes). The triggering job is already claimed in
        // `scratch`, so every re-placement is disjoint from `admits` by
        // construction.
        let mut largest_first: Vec<usize> = evicted.to_vec();
        largest_first.sort_by_key(|&i| (std::cmp::Reverse(live[i].nodes.len()), live[i].job.0));
        let mut eviction_rev: Vec<usize> = evicted.to_vec();
        eviction_rev.reverse();
        let candidates = [largest_first, evicted.to_vec(), eviction_rev];
        'orders: for replace_order in &candidates {
            let mut scratch = scratch.clone();
            let mut salloc = salloc.clone_box();
            let mut moves: Vec<Migration> = Vec::new();
            let mut scratch_live: Vec<Allocation> = (0..live.len())
                .filter(|i| !evicted.contains(i))
                .map(|i| live[i].clone())
                .collect();
            scratch_live.push(admits.clone());
            for &i in replace_order {
                let old = &live[i];
                let back = JobRequest::with_bandwidth(old.job, old.requested, old.bw_tenths);
                let Decision::Admit(new_placement) = salloc.decide(&mut scratch, &back) else {
                    continue 'orders; // cannot re-home everyone at this depth
                };
                scratch_live.push(new_placement.clone());
                if new_placement != *old {
                    moves.push(Migration {
                        job: old.job,
                        from: old.clone(),
                        to: new_placement,
                    });
                }
            }

            // Soundness gate: the fully-executed scratch schedule must
            // audit clean (defensive — a failure here is an allocator
            // bug, not a caller error).
            if !audit_system(&scratch, &scratch_live).is_empty() {
                continue 'orders;
            }

            // Cyclic swap under this order: try the next one.
            let Some(moves) = sequence_moves(moves) else {
                continue 'orders;
            };
            let score = moves.iter().map(Migration::nodes_moved).sum();
            return Some((
                MigrationPlan {
                    admits,
                    blocking,
                    moves,
                },
                score,
            ));
        }
    }
    None
}

/// Order `moves` so they are sequentially applicable: each move's `to`
/// must be disjoint from every **later** move's `from` (a later job still
/// holds its old placement when an earlier move claims its destination).
/// A move's own `from`/`to` may overlap — application releases before it
/// adopts. Returns `None` on a cyclic dependency (e.g. two jobs swapping
/// placements), which cannot be applied one move at a time.
fn sequence_moves(mut moves: Vec<Migration>) -> Option<Vec<Migration>> {
    let mut ordered = Vec::with_capacity(moves.len());
    while !moves.is_empty() {
        // A move is ready when its destination is disjoint from every
        // other pending move's current (old) placement.
        let ready = moves.iter().position(|m| {
            moves
                .iter()
                .all(|other| other.job == m.job || m.to.is_disjoint_from(&other.from))
        })?;
        ordered.push(moves.swap_remove(ready));
    }
    Some(ordered)
}

/// Metropolis annealing over eviction orders, starting from the greedy
/// order. Deterministic for fixed inputs and `seed`.
#[allow(clippy::too_many_arguments)]
fn anneal(
    alloc: &dyn Allocator,
    state: &SystemState,
    live: &[Allocation],
    req: &JobRequest,
    blocking: Reject,
    start_order: Vec<usize>,
    cfg: &DefragConfig,
    iters: u32,
    seed: u64,
) -> Option<MigrationPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current_order = start_order;
    let mut current = evaluate_order(
        alloc,
        state,
        live,
        req,
        blocking,
        &current_order,
        cfg.max_moves,
    );
    let mut best = current.clone();
    if current_order.len() < 2 {
        return best.map(|(plan, _)| plan);
    }
    // Initial temperature of a few nodes' worth of cost; geometric cooling.
    let mut temperature = 8.0_f64;
    let cooling = 0.95_f64;
    // Swapping positions past the eviction window never changes the plan;
    // keep proposals inside (a bit beyond) the window so steps matter.
    let window = (cfg.max_moves + 2).min(current_order.len());
    for _ in 0..iters {
        let a = rng.random_range(0..window);
        let b = rng.random_range(0..window);
        if a == b {
            temperature *= cooling;
            continue;
        }
        let mut candidate_order = current_order.clone();
        candidate_order.swap(a, b);
        let candidate = evaluate_order(
            alloc,
            state,
            live,
            req,
            blocking,
            &candidate_order,
            cfg.max_moves,
        );
        let accept = match (&candidate, &current) {
            (Some((_, new_score)), Some((_, cur_score))) => {
                let delta = f64::from(*new_score) - f64::from(*cur_score);
                delta <= 0.0 || rng.random_bool((-delta / temperature).exp())
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if accept {
            current_order = candidate_order;
            current = candidate;
            let improves = match (&current, &best) {
                (Some((_, s)), Some((_, b))) => s < b,
                (Some(_), None) => true,
                _ => false,
            };
            if improves {
                best = current.clone();
            }
        }
        temperature *= cooling;
    }
    best.map(|(plan, _)| plan)
}

/// An [`Allocator`] wrapper that turns fragmentation rejects into
/// [`Decision::Reconfigure`] proposals.
///
/// The wrapper tracks the live allocation set by observing its own
/// `decide`/`release`/`adopt` traffic, so it must see *every* grant and
/// release (wrap the allocator before first use, or seed the set with
/// [`Defragmenter::with_live`] when adopting an existing schedule). Plain
/// rejects — zero size, raw node shortage, or requests that would not fit
/// even an empty machine — pass through untouched.
#[derive(Clone)]
pub struct Defragmenter {
    inner: Box<dyn Allocator>,
    live: Vec<Allocation>,
    cfg: DefragConfig,
}

impl Defragmenter {
    /// Wrap `inner`, starting from an empty machine.
    pub fn new(inner: Box<dyn Allocator>, cfg: DefragConfig) -> Defragmenter {
        Defragmenter::with_live(inner, cfg, Vec::new())
    }

    /// Wrap `inner` over a machine that already hosts `live` (the wrapper
    /// assumes every allocation in `live` is claimed in the states it will
    /// be handed).
    pub fn with_live(
        inner: Box<dyn Allocator>,
        cfg: DefragConfig,
        live: Vec<Allocation>,
    ) -> Defragmenter {
        Defragmenter { inner, live, cfg }
    }

    /// The tracked live allocation set (insertion order).
    pub fn live(&self) -> &[Allocation] {
        &self.live
    }

    /// The planning bounds and scheme in use.
    pub fn config(&self) -> &DefragConfig {
        &self.cfg
    }
}

impl Allocator for Defragmenter {
    fn name(&self) -> &'static str {
        // Deliberately transparent: metrics and STATS keep reporting the
        // underlying scheme.
        self.inner.name()
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        match self.inner.decide(state, req) {
            Decision::Admit(alloc) => {
                self.live.push(alloc.clone());
                Decision::Admit(alloc)
            }
            Decision::Reject(reject) if reject.is_fragmentation() => {
                match plan_migrations(&*self.inner, state, &self.live, req, reject, &self.cfg) {
                    Some(plan) => Decision::Reconfigure(plan),
                    None => Decision::Reject(reject),
                }
            }
            other => other,
        }
    }

    fn release(&mut self, state: &mut SystemState, alloc: &Allocation) {
        self.live.retain(|a| a.job != alloc.job);
        self.inner.release(state, alloc);
    }

    fn adopt(&mut self, state: &mut SystemState, alloc: &Allocation) {
        self.inner.adopt(state, alloc);
        self.live.push(alloc.clone());
    }

    fn recycle(&mut self, alloc: Allocation) {
        self.inner.recycle(alloc);
    }

    fn last_search_steps(&self) -> u64 {
        self.inner.last_search_steps()
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        Box::new(self.clone())
    }

    fn fresh_box(&self) -> Box<dyn Allocator> {
        Box::new(Defragmenter {
            inner: self.inner.fresh_box(),
            live: Vec::new(),
            cfg: self.cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use jigsaw_topology::FatTree;

    /// Fragment a radix-8 machine (128 nodes, 4-node leaves, 16-node pods):
    /// fill every leaf with a 3-node job plus a 1-node job, then free every
    /// 3-node job. Result: each of the 32 leaves holds one pinned node and
    /// a 3-node hole — 96 nodes free, yet no fully free leaf and at most 12
    /// free nodes per pod. A pod-exceeding request (20 nodes) then rejects
    /// with NoShape: the two-level search needs one pod with 20 free, the
    /// three-level search needs full leaves. Moving five 1-node jobs
    /// recovers five whole leaves and admits it.
    fn fragmented() -> (SystemState, Box<dyn Allocator>, Vec<Allocation>) {
        let tree = FatTree::maximal(8).unwrap();
        let mut state = SystemState::new(tree);
        let mut alloc = Scheme::Jigsaw.make(&tree);
        let mut live = Vec::new();
        let leaves = tree.num_nodes() / tree.nodes_per_leaf();
        for i in 0..leaves {
            for (slot, size) in [(0u32, 3u32), (1, 1)] {
                match alloc.decide(&mut state, &JobRequest::new(JobId(2 * i + slot), size)) {
                    Decision::Admit(a) => live.push(a),
                    other => panic!("setup grant failed: {other:?}"),
                }
            }
        }
        // Free every 3-node job, keeping the 1-node pins.
        live.retain(|a| {
            let keep = a.job.0 % 2 == 1;
            if !keep {
                // Split borrows: release through a fresh handle.
                crate::alloc::release_allocation(&mut state, a);
            }
            keep
        });
        (state, alloc, live)
    }

    /// The blocked request of the `fragmented` fixture: larger than any
    /// pod's free capacity, needing five whole leaves.
    fn blocked_req(tree: &FatTree) -> JobRequest {
        JobRequest::new(JobId(1000), tree.nodes_per_pod() + tree.nodes_per_leaf())
    }

    #[test]
    fn greedy_plan_admits_a_blocked_leaf_job() {
        let (mut state, mut alloc, mut live) = fragmented();
        let tree = *state.tree();
        let req = blocked_req(&tree);
        let reject = match alloc.decide(&mut state, &req) {
            Decision::Reject(r) => r,
            other => panic!("expected fragmentation reject, got {other:?}"),
        };
        assert!(reject.is_fragmentation(), "{reject:?}");

        let plan = plan_migrations(
            &*alloc,
            &state,
            &live,
            &req,
            reject,
            &DefragConfig::default(),
        )
        .expect("a bounded plan exists");
        assert!(!plan.moves.is_empty());
        assert!(plan.moves.len() <= DefragConfig::default().max_moves);
        assert_eq!(plan.admits.job, req.id);
        assert_eq!(plan.admits.nodes.len() as u32, req.size);

        let admitted = alloc
            .apply_plan(&mut state, &mut live, &plan)
            .expect("plan applies cleanly");
        assert_eq!(admitted, plan.admits);
        state.assert_consistent();
        assert!(audit_system(&state, &live).is_empty());
    }

    #[test]
    fn anneal_never_beats_greedy_by_breaking_soundness() {
        let (mut state, mut alloc, mut live) = fragmented();
        let tree = *state.tree();
        let req = blocked_req(&tree);
        let reject = match alloc.decide(&mut state, &req) {
            Decision::Reject(r) => r,
            other => panic!("expected reject, got {other:?}"),
        };
        let cfg = DefragConfig {
            max_moves: 8,
            scheme: PlanScheme::Anneal { iters: 16, seed: 7 },
        };
        let plan = plan_migrations(&*alloc, &state, &live, &req, reject, &cfg)
            .expect("anneal finds at least the greedy plan");
        // Same seed, same plan: the annealer is deterministic.
        let again = plan_migrations(&*alloc, &state, &live, &req, reject, &cfg).unwrap();
        assert_eq!(plan, again);
        alloc
            .apply_plan(&mut state, &mut live, &plan)
            .expect("anneal plan applies");
        assert!(audit_system(&state, &live).is_empty());
    }

    #[test]
    fn defragmenter_upgrades_fragmentation_rejects() {
        let (state, alloc, live) = fragmented();
        let mut state = state;
        let tree = *state.tree();
        let mut defrag = Defragmenter::with_live(alloc, DefragConfig::default(), live.clone());
        let req = blocked_req(&tree);
        let plan = match defrag.decide(&mut state, &req) {
            Decision::Reconfigure(plan) => plan,
            other => panic!("expected Reconfigure, got {other:?}"),
        };
        let mut caller_live = live;
        let admitted = defrag
            .apply_plan(&mut state, &mut caller_live, &plan)
            .expect("plan applies");
        // Internal tracking followed the moves: the defragmenter can plan
        // again from its own books.
        assert!(defrag.live().contains(&admitted));
        assert_eq!(defrag.live().len(), caller_live.len());
        assert!(audit_system(&state, &caller_live).is_empty());

        // A request that fits nowhere ever passes through as a plain
        // reject (no plan search).
        let impossible = JobRequest::new(JobId(2000), tree.num_nodes() + 1);
        match defrag.decide(&mut state, &impossible) {
            Decision::Reject(r) => assert!(!r.would_fit_empty),
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn stale_plans_are_refused() {
        let (mut state, mut alloc, mut live) = fragmented();
        let tree = *state.tree();
        let req = blocked_req(&tree);
        let reject = match alloc.decide(&mut state, &req) {
            Decision::Reject(r) => r,
            other => panic!("expected reject, got {other:?}"),
        };
        let plan = plan_migrations(
            &*alloc,
            &state,
            &live,
            &req,
            reject,
            &DefragConfig::default(),
        )
        .unwrap();
        // The world moved on: the first victim's job finished.
        let moved = plan.moves[0].job;
        let idx = live.iter().position(|a| a.job == moved).unwrap();
        let gone = live.remove(idx);
        alloc.release(&mut state, &gone);
        assert_eq!(
            alloc.apply_plan(&mut state, &mut live, &plan),
            Err(PlanApplyError::StaleMove { job: moved })
        );
    }

    #[test]
    fn sequencing_refuses_swaps() {
        // Two jobs exchanging placements cannot be applied one at a time.
        let (state, mut alloc, _) = fragmented();
        let mut s = SystemState::new(*state.tree());
        let a = match alloc.decide(&mut s, &JobRequest::new(JobId(1), 3)) {
            Decision::Admit(a) => a,
            other => panic!("{other:?}"),
        };
        let b = match alloc.decide(&mut s, &JobRequest::new(JobId(2), 3)) {
            Decision::Admit(a) => a,
            other => panic!("{other:?}"),
        };
        let swap = vec![
            Migration {
                job: a.job,
                from: a.clone(),
                to: Allocation {
                    job: a.job,
                    ..b.clone()
                },
            },
            Migration {
                job: b.job,
                from: b.clone(),
                to: Allocation {
                    job: b.job,
                    ..a.clone()
                },
            },
        ];
        assert_eq!(sequence_moves(swap), None);
        // A single self-overlapping move is fine (release precedes adopt).
        let solo = vec![Migration {
            job: a.job,
            from: a.clone(),
            to: a.clone(),
        }];
        assert_eq!(sequence_moves(solo.clone()), Some(solo));
    }
}
