//! The Baseline allocator: a traditional, network-oblivious scheduler.
//!
//! Baseline allocates any free nodes first-fit and ignores the network
//! entirely — exactly how most production HPC schedulers behave (§1 of the
//! paper). It never fails while enough nodes are free, which is why its
//! utilization upper-bounds every other scheme; the price is inter-job
//! network interference, modeled by the simulator's speed-up scenarios.

use crate::alloc::{claim_allocation, Allocation, Shape};
use crate::allocator::{Allocator, Decision};
use crate::job::JobRequest;
use crate::reject::{FitHintCache, Reject, RejectReason};
use crate::scratch::SearchScratch;
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::{FatTree, SystemState};

/// The traditional first-fit node allocator.
#[derive(Debug, Clone, Default)]
pub struct BaselineAllocator {
    steps: u64,
    scratch: SearchScratch,
    fit_hint: FitHintCache,
}

impl BaselineAllocator {
    /// Build a Baseline allocator (works on any tree, tapered included).
    pub fn new(_tree: &FatTree) -> Self {
        BaselineAllocator::default()
    }

    /// First-fit search, claiming on success (the body behind
    /// [`Allocator::decide`] and the empty-machine fit probe).
    fn search_claim(
        &mut self,
        state: &mut SystemState,
        req: &JobRequest,
    ) -> Result<Allocation, RejectReason> {
        self.steps = 1;
        if req.size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if state.free_node_count() < req.size {
            return Err(RejectReason::NoNodes {
                free: state.free_node_count(),
                requested: req.size,
            });
        }
        let tree = *state.tree();
        let mut nodes = self.scratch.nodes.take();
        'leaves: for leaf in tree.leaves() {
            self.steps += 1;
            if state.free_nodes_on_leaf(leaf) == 0 {
                continue;
            }
            for node in state.free_nodes_on_leaf_iter(leaf) {
                nodes.push(node);
                if count_u32(nodes.len()) == req.size {
                    break 'leaves;
                }
            }
        }
        debug_assert_eq!(count_u32(nodes.len()), req.size);
        let alloc = Allocation {
            job: req.id,
            requested: req.size,
            nodes,
            leaf_links: Vec::new(),
            spine_links: Vec::new(),
            bw_tenths: 0,
            shape: Shape::Unstructured,
        };
        claim_allocation(state, &alloc);
        Ok(alloc)
    }
}

impl Allocator for BaselineAllocator {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        match self.search_claim(state, req) {
            Ok(alloc) => Decision::Admit(alloc),
            Err(reason) => {
                let tree = *state.tree();
                let hint = self.fit_hint.hint(req.size, req.bw_tenths, || {
                    let mut probe = BaselineAllocator::default();
                    probe.search_claim(&mut SystemState::new(tree), req).is_ok()
                });
                Decision::Reject(Reject::with_hint(reason, hint))
            }
        }
    }

    fn recycle(&mut self, alloc: Allocation) {
        self.scratch.recycle(alloc);
    }

    fn last_search_steps(&self) -> u64 {
        self.steps
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_topology::ids::JobId;

    fn setup() -> (SystemState, BaselineAllocator) {
        let tree = FatTree::maximal(4).unwrap();
        (
            SystemState::new(tree),
            BaselineAllocator::new(&FatTree::maximal(4).unwrap()),
        )
    }

    #[test]
    fn allocates_any_free_nodes() {
        let (mut state, mut base) = setup();
        let a = base
            .try_admit(&mut state, &JobRequest::new(JobId(1), 5))
            .unwrap();
        assert_eq!(a.nodes.len(), 5);
        assert!(a.leaf_links.is_empty());
        assert!(matches!(a.shape, Shape::Unstructured));
        state.assert_consistent();
    }

    #[test]
    fn succeeds_whenever_nodes_suffice() {
        let (mut state, mut base) = setup();
        // Fragment the machine: one node taken on every leaf.
        let tree = *state.tree();
        for leaf in tree.leaves() {
            state.claim_node(tree.node_at(leaf, 0), JobId(99));
        }
        // 8 scattered nodes remain; Baseline takes them all.
        let a = base
            .try_admit(&mut state, &JobRequest::new(JobId(1), 8))
            .unwrap();
        assert_eq!(a.nodes.len(), 8);
        assert_eq!(state.free_node_count(), 0);
    }

    #[test]
    fn fails_only_on_node_shortage() {
        let (mut state, mut base) = setup();
        assert_eq!(
            base.try_admit(&mut state, &JobRequest::new(JobId(1), 17))
                .map_err(|r| r.reason),
            Err(RejectReason::NoNodes {
                free: 16,
                requested: 17
            })
        );
        let _ = base
            .try_admit(&mut state, &JobRequest::new(JobId(1), 16))
            .unwrap();
        let full = base
            .try_admit(&mut state, &JobRequest::new(JobId(2), 1))
            .unwrap_err();
        assert_eq!(
            full.reason,
            RejectReason::NoNodes {
                free: 0,
                requested: 1
            }
        );
        // A 1-node job obviously fits an empty machine: the rejection is
        // purely occupancy.
        assert!(full.would_fit_empty);
    }

    #[test]
    fn release_returns_nodes() {
        let (mut state, mut base) = setup();
        let a = base
            .try_admit(&mut state, &JobRequest::new(JobId(1), 16))
            .unwrap();
        base.release(&mut state, &a);
        assert_eq!(state.free_node_count(), 16);
        state.assert_consistent();
    }
}
