//! The Links-as-a-Service (LaaS) allocator [Zahavi et al. 2016], as
//! evaluated by the paper (§5.2.1).
//!
//! LaaS reduces the three-level problem to two levels: *entire leaves* take
//! the place of nodes. Consequently job sizes are rounded up to the nearest
//! multiple of the leaf size, and every allocated leaf is wholly assigned to
//! the job — nodes the job did not ask for included. That rounding is the
//! internal node fragmentation of Fig. 2-left, which costs LaaS 3–7% of
//! system nodes in the paper's experiments.
//!
//! Operationally this makes LaaS exactly "Jigsaw restricted to whole leaves
//! with no remainder leaf": the paper notes the two algorithms coincide up
//! to the two-level search (footnote 2), and conditions (2)/(4) originate
//! from the LaaS paper. We therefore reuse the shared search machinery with
//! `n_L` pinned to the leaf size and `n_L^r = 0`.
//!
//! **Sub-leaf jobs.** A job that fits under a single leaf switch produces
//! no link traffic, and the original (two-level) LaaS algorithm allocates
//! at node granularity within leaves, so by default such jobs are packed
//! onto shared leaves without rounding; only jobs spanning leaves round up
//! to whole leaves (Fig. 2-left shows exactly such a multi-leaf job).
//! [`LaasAllocator::strict_whole_leaf`] applies the literal 3-level→2-level
//! reduction to every job instead — the difference is measured in
//! EXPERIMENTS.md.

use crate::alloc::{claim_allocation, Allocation, Shape};
use crate::allocator::{Allocator, Decision};
use crate::job::JobRequest;
use crate::reject::{FitHintCache, Reject, RejectReason};
use crate::scratch::SearchScratch;
use crate::search::{find_three_level_full, Budget, Exclusive, LinkView};
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::state::mask_of;
use jigsaw_topology::{FatTree, SystemState};

/// The LaaS allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct LaasAllocator {
    steps: u64,
    pack_subleaf: bool,
    scratch: SearchScratch,
    fit_hint: FitHintCache,
}

impl LaasAllocator {
    /// Build a LaaS allocator for `tree`.
    ///
    /// # Panics
    /// If `tree` is not full bandwidth (same requirement as Jigsaw).
    pub fn new(tree: &FatTree) -> Self {
        assert!(
            tree.is_full_bandwidth(),
            "LaaS requires a full-bandwidth fat-tree (m1 == w2, m2 == w3)"
        );
        LaasAllocator {
            steps: 0,
            pack_subleaf: true,
            scratch: SearchScratch::default(),
            fit_hint: FitHintCache::new(),
        }
    }

    /// The literal reduction: every job, however small, rounds up to whole
    /// leaves (see the module docs).
    pub fn strict_whole_leaf(tree: &FatTree) -> Self {
        let mut a = Self::new(tree);
        a.pack_subleaf = false;
        a
    }

    /// The LaaS placement search, without committing resources.
    pub fn find_shape(&mut self, state: &SystemState, size: u32) -> Option<Shape> {
        let tree = state.tree();
        if size == 0 || size > tree.num_nodes() {
            return None;
        }
        let w = tree.nodes_per_leaf();
        let l = tree.leaves_per_pod();
        let p = tree.num_pods();
        let leaves_needed = size.div_ceil(w);
        let mut budget = Budget::unlimited();
        let view = Exclusive;

        let shape = 'search: {
            // Sub-leaf jobs pack at node granularity (see module docs).
            if self.pack_subleaf && size <= w {
                for leaf in tree.leaves() {
                    budget.spend();
                    if state.free_nodes_on_leaf(leaf) >= size {
                        break 'search Some(Shape::SingleLeaf { leaf, n: size });
                    }
                }
                break 'search None;
            }
            // Single pod: any pod with enough fully free leaves.
            if leaves_needed <= l {
                for pod in tree.pods() {
                    budget.spend();
                    if view.full_leaves_in_pod(state, pod) >= leaves_needed {
                        let mut leaves = self.scratch.leaves.take();
                        leaves.extend(
                            tree.leaves_of_pod(pod)
                                .filter(|&leaf| view.is_full_leaf(state, leaf))
                                .take(leaves_needed as usize),
                        );
                        if leaves_needed == 1 {
                            let leaf = leaves[0];
                            self.scratch.leaves.put(leaves);
                            break 'search Some(Shape::SingleLeaf { leaf, n: w });
                        }
                        break 'search Some(Shape::TwoLevel {
                            pod,
                            n_l: w,
                            leaves,
                            l2_set: mask_of(tree.l2_per_pod()),
                            rem_leaf: None,
                        });
                    }
                }
            }

            // Across pods: equal whole-leaf counts per pod plus an optional
            // smaller remainder pod (the reduced two-level LaaS conditions).
            for l_t in (1..=l.min(leaves_needed)).rev() {
                let t_full = leaves_needed / l_t;
                let l_rt = leaves_needed % l_t;
                if t_full == 0 || (t_full == 1 && l_rt == 0) {
                    continue;
                }
                if t_full + u32::from(l_rt > 0) > p {
                    continue;
                }
                if let Some(pick) = find_three_level_full(
                    state,
                    &view,
                    &mut self.scratch,
                    l_t,
                    t_full,
                    l_rt,
                    0,
                    &mut budget,
                ) {
                    break 'search Some(pick.into_shape());
                }
            }
            None
        };
        self.steps = budget.spent();
        shape
    }

    /// The whole-leaf search, claiming on success (the body behind
    /// [`Allocator::decide`] and the empty-machine fit probe).
    fn search_claim(
        &mut self,
        state: &mut SystemState,
        req: &JobRequest,
    ) -> Result<Allocation, RejectReason> {
        if req.size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if req.size > state.tree().num_nodes() || req.size > state.free_node_count() {
            return Err(RejectReason::NoNodes {
                free: state.free_node_count(),
                requested: req.size,
            });
        }
        let shape = self
            .find_shape(state, req.size)
            .ok_or(RejectReason::NoShape)?;
        // `requested` records the true need; the shape's node count is the
        // rounded-up grant (internal fragmentation) for multi-leaf jobs.
        let alloc =
            Allocation::from_shape_with(&mut self.scratch, state, req.id, req.size, 0, shape);
        debug_assert!(count_u32(alloc.nodes.len()) >= req.size);
        let w = state.tree().nodes_per_leaf();
        debug_assert!(
            (self.pack_subleaf && req.size <= w && count_u32(alloc.nodes.len()) == req.size)
                || count_u32(alloc.nodes.len()) == req.size.div_ceil(w) * w
        );
        claim_allocation(state, &alloc);
        Ok(alloc)
    }
}

impl Allocator for LaasAllocator {
    fn name(&self) -> &'static str {
        "LaaS"
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        match self.search_claim(state, req) {
            Ok(alloc) => Decision::Admit(alloc),
            Err(reason) => {
                let pack_subleaf = self.pack_subleaf;
                let tree = *state.tree();
                let hint = self.fit_hint.hint(req.size, req.bw_tenths, || {
                    let mut probe = LaasAllocator {
                        steps: 0,
                        pack_subleaf,
                        scratch: SearchScratch::default(),
                        fit_hint: FitHintCache::new(),
                    };
                    probe.search_claim(&mut SystemState::new(tree), req).is_ok()
                });
                Decision::Reject(Reject::with_hint(reason, hint))
            }
        }
    }

    fn recycle(&mut self, alloc: Allocation) {
        self.scratch.recycle(alloc);
    }

    fn last_search_steps(&self) -> u64 {
        self.steps
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::check_shape;
    use jigsaw_topology::ids::JobId;

    fn setup(radix: u32) -> (SystemState, LaasAllocator) {
        let tree = FatTree::maximal(radix).unwrap();
        let alloc = LaasAllocator::new(&tree);
        (SystemState::new(tree), alloc)
    }

    #[test]
    fn rounds_up_to_whole_leaves() {
        let (mut state, mut laas) = setup(8); // leaves of 4 nodes
        let a = laas
            .try_admit(&mut state, &JobRequest::new(JobId(1), 5))
            .unwrap();
        assert_eq!(a.requested, 5);
        assert_eq!(a.nodes.len(), 8, "5 nodes round up to 2 whole leaves");
        // The internal fragmentation of Fig. 2-left: 3 nodes wasted.
        assert_eq!(a.nodes.len() as u32 - a.requested, 3);
        state.assert_consistent();
    }

    #[test]
    fn subleaf_job_packs_by_default_and_rounds_in_strict_mode() {
        let (mut state, mut laas) = setup(8);
        let a = laas
            .try_admit(&mut state, &JobRequest::new(JobId(1), 1))
            .unwrap();
        assert!(matches!(a.shape, Shape::SingleLeaf { n: 1, .. }));
        assert_eq!(a.nodes.len(), 1);
        // A second 1-node job shares the leaf.
        let b = laas
            .try_admit(&mut state, &JobRequest::new(JobId(2), 1))
            .unwrap();
        assert_eq!(
            state.tree().leaf_of_node(a.nodes[0]),
            state.tree().leaf_of_node(b.nodes[0])
        );

        let tree = jigsaw_topology::FatTree::maximal(8).unwrap();
        let mut state = SystemState::new(tree);
        let mut strict = LaasAllocator::strict_whole_leaf(&tree);
        let c = strict
            .try_admit(&mut state, &JobRequest::new(JobId(1), 1))
            .unwrap();
        assert!(matches!(c.shape, Shape::SingleLeaf { n: 4, .. }));
        assert_eq!(
            c.nodes.len(),
            4,
            "strict mode rounds even 1-node jobs to a leaf"
        );
    }

    #[test]
    fn whole_leaf_allocations_never_split_leaves() {
        let (mut state, mut laas) = setup(8);
        let tree = *state.tree();
        for (i, size) in [9u32, 17, 40].iter().enumerate() {
            let a = laas
                .try_admit(&mut state, &JobRequest::new(JobId(i as u32), *size))
                .unwrap();
            // Every touched leaf is wholly owned.
            let mut per_leaf = std::collections::HashMap::new();
            for &n in &a.nodes {
                *per_leaf.entry(tree.leaf_of_node(n)).or_insert(0u32) += 1;
            }
            assert!(per_leaf.values().all(|&c| c == tree.nodes_per_leaf()));
        }
        state.assert_consistent();
    }

    #[test]
    fn multi_pod_shapes_satisfy_conditions() {
        let (mut state, mut laas) = setup(4); // pods of 4 nodes, leaves of 2
        let a = laas
            .try_admit(&mut state, &JobRequest::new(JobId(1), 9))
            .unwrap();
        // 9 rounds to 10 nodes = 5 whole leaves over 3 pods (2+2+1 leaves).
        assert_eq!(a.nodes.len(), 10);
        check_shape(state.tree(), &a.shape).unwrap();
        state.assert_consistent();
    }

    #[test]
    fn fails_when_rounding_exceeds_free_leaves() {
        let (mut state, mut laas) = setup(4); // 8 leaves of 2 nodes
        laas.pack_subleaf = false; // strict mode for this scenario
        let tree = *state.tree();
        // Occupy one node on every leaf: no fully free leaf remains.
        for leaf in tree.leaves() {
            state.claim_node(tree.node_at(leaf, 0), JobId(99));
        }
        // Half the machine is free, but LaaS cannot place even a 1-node job.
        let reject = laas
            .try_admit(&mut state, &JobRequest::new(JobId(1), 1))
            .unwrap_err();
        assert_eq!(reject.reason, RejectReason::NoShape);
        // The job fits an empty machine: this is fragmentation, and the
        // hint says so.
        assert!(reject.would_fit_empty);
        assert!(reject.is_fragmentation());
    }

    #[test]
    fn internal_fragmentation_accounting() {
        // Over a stream of multi-leaf jobs the wasted fraction is
        // sum(granted - requested); check it matches the rounding formula.
        let (mut state, mut laas) = setup(8);
        let w = state.tree().nodes_per_leaf();
        let mut wasted = 0;
        for (i, size) in (5..=20u32).enumerate() {
            if let Ok(a) = laas.try_admit(&mut state, &JobRequest::new(JobId(i as u32), size)) {
                wasted += a.nodes.len() as u32 - a.requested;
                assert_eq!(a.nodes.len() as u32, size.div_ceil(w) * w);
            }
        }
        assert!(
            wasted > 0,
            "a 5..20 size sweep on 4-node leaves must waste nodes"
        );
    }
}
