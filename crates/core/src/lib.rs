//! # jigsaw-core
//!
//! The Jigsaw job-isolating allocator for three-level fat-trees
//! (Smith & Lowenthal, HPDC 2021) and the comparison allocators of the
//! paper's evaluation:
//!
//! * [`JigsawAllocator`] — Algorithm 1 of the paper: two-level
//!   (single-subtree) search first, then a three-level search restricted to
//!   full leaves (except the single remainder leaf), satisfying the formal
//!   conditions of §3.2 and therefore producing partitions that are
//!   rearrangeable non-blocking (made executable by `jigsaw-routing`).
//! * [`LaasAllocator`] — Links-as-a-Service: whole-leaf allocations with job
//!   sizes rounded up to leaf multiples (internal node fragmentation).
//! * [`TaAllocator`] — topology-aware scheduling: node-placement rules
//!   (leaf-/pod-/machine-class jobs) without explicit link allocation.
//! * [`LcsAllocator`] — least-constrained scheduling with fractional link
//!   sharing, the paper's near-optimal bounding scheme.
//! * [`BaselineAllocator`] — a traditional, network-oblivious scheduler.
//!
//! All allocators implement the [`Allocator`] trait over a shared
//! [`SystemState`](jigsaw_topology::SystemState): [`Allocator::decide`]
//! returns a three-way [`Decision`] — `Admit` with a structured
//! [`Allocation`], `Reject` with a typed [`Reject`] reason (plus the
//! would-it-fit-empty fragmentation hint), or `Reconfigure` with a bounded
//! [`MigrationPlan`] computed by the [`defrag`] module. Placements can be
//! validated against the paper's formal conditions via
//! [`conditions::check_shape`]. Wrapping any scheme in
//! [`ObservedAllocator`] records per-scheme latency/effort/rejection
//! metrics into a [`Registry`](jigsaw_obs::Registry); wrapping it in
//! [`Defragmenter`] upgrades fragmentation rejects into migration plans.
//!
//! ```
//! use jigsaw_core::{Allocator, Decision, JigsawAllocator, JobRequest, RejectReason, Scheme};
//! use jigsaw_topology::{ids::JobId, FatTree, SystemState};
//!
//! let tree = FatTree::maximal(16).unwrap(); // 1024 nodes
//! let mut state = SystemState::new(tree);
//! let mut jigsaw = JigsawAllocator::new(&tree);
//!
//! // Jigsaw grants exactly the requested node count on an isolated,
//! // full-bandwidth partition.
//! let alloc = jigsaw
//!     .try_admit(&mut state, &JobRequest::new(JobId(1), 77))
//!     .expect("fits an empty machine");
//! assert_eq!(alloc.nodes.len(), 77);
//! jigsaw_core::conditions::check_shape(&tree, &alloc.shape).unwrap();
//!
//! // Every scheme of the paper's evaluation is one constructor away, and
//! // failures carry a typed reason.
//! let mut ta = Scheme::Ta.make(&tree);
//! assert!(ta.try_admit(&mut state, &JobRequest::new(JobId(2), 5)).is_ok());
//! match ta.decide(&mut state, &JobRequest::new(JobId(3), 0)) {
//!     Decision::Reject(r) => assert_eq!(r.reason, RejectReason::ZeroSize),
//!     other => panic!("expected a reject, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod allocator;
pub mod audit;
pub mod baseline;
pub mod conditions;
pub mod defrag;
pub mod instrument;
pub mod jigsaw;
pub mod job;
pub mod laas;
pub mod lcs;
pub mod reject;
pub mod scratch;
pub mod search;
pub mod ta;

pub use alloc::{Allocation, RemTree, Shape, TreeAlloc};
pub use allocator::{Allocator, Decision, ParseSchemeError, Scheme};
pub use audit::{audit_system, AuditError};
pub use baseline::BaselineAllocator;
pub use conditions::{check_shape, ConditionViolation};
pub use defrag::{
    plan_migrations, DefragConfig, Defragmenter, Migration, MigrationPlan, PlanApplyError,
    PlanScheme,
};
pub use instrument::{AllocatorObs, ObservedAllocator};
pub use jigsaw::JigsawAllocator;
pub use job::JobRequest;
pub use laas::LaasAllocator;
pub use lcs::LcsAllocator;
pub use reject::{FitHintCache, Reject, RejectReason};
pub use scratch::SearchScratch;
pub use ta::TaAllocator;
