//! Job requests as seen by allocators.

use jigsaw_topology::ids::JobId;
use serde::{Deserialize, Serialize};

/// A request for an allocation, carrying everything an allocator may need.
///
/// `bw_tenths` is the job's average per-link bandwidth demand in tenths of
/// GB/s; it is consulted only by the LC+S allocator (§5.2.3 of the paper
/// notes this information is *not* available to real schedulers — LC+S is a
/// bounding scheme). Exclusive allocators ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Identity used for ownership tagging.
    pub id: JobId,
    /// Number of nodes requested (`N_r`; Jigsaw guarantees `N = N_r`).
    pub size: u32,
    /// Per-link bandwidth demand for link-sharing schemes, tenths of GB/s.
    pub bw_tenths: u16,
}

impl JobRequest {
    /// A request with the default LC+S bandwidth class (1.0 GB/s).
    pub fn new(id: JobId, size: u32) -> Self {
        JobRequest {
            id,
            size,
            bw_tenths: 10,
        }
    }

    /// A request with an explicit bandwidth class.
    pub fn with_bandwidth(id: JobId, size: u32, bw_tenths: u16) -> Self {
        JobRequest {
            id,
            size,
            bw_tenths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = JobRequest::new(JobId(3), 17);
        assert_eq!(r.size, 17);
        assert_eq!(r.bw_tenths, 10);
        let r = JobRequest::with_bandwidth(JobId(3), 17, 20);
        assert_eq!(r.bw_tenths, 20);
    }
}
