//! The least-constrained-with-link-sharing (LC+S) allocator — the paper's
//! theoretical bounding scheme (§5.2.3).
//!
//! LC+S uses the *full* legal placement space of the formal conditions
//! (arbitrary `n_L`, not just full leaves, at three levels) and, instead of
//! exclusive link ownership, reserves each job's average per-link bandwidth
//! demand on shared links, capping every link at 80% of its 5 GB/s capacity
//! (§5.4.2). Interference is then expected to be negligible but not zero,
//! and per-job bandwidth knowledge is unrealistic — which is why the paper
//! treats LC+S as a near-optimal bound rather than a deployable scheduler.
//!
//! The paper guards LC+S's worst-case search (hours) with a 5-second
//! wall-clock timeout; we use a deterministic backtracking-step budget so
//! that simulations are reproducible (see DESIGN.md §4). The per-pod
//! sub-solution enumeration (`FIND_ALL_L2`) is likewise capped.

use crate::alloc::{claim_allocation, Allocation, Shape};
use crate::allocator::{Allocator, Decision};
use crate::job::JobRequest;
use crate::reject::{FitHintCache, Reject, RejectReason};
use crate::scratch::SearchScratch;
use crate::search::{
    find_three_level_full, find_three_level_general, find_two_level, Budget, Shared,
};
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::{FatTree, SystemState};

/// Default backtracking-step budget per allocation attempt, standing in for
/// the paper's 5 s timeout.
pub const DEFAULT_STEP_BUDGET: u64 = 200_000;

/// Default cap on per-pod sub-solutions in the general three-level search.
pub const DEFAULT_PER_POD_CAP: usize = 12;

/// The LC+S allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct LcsAllocator {
    step_budget: u64,
    per_pod_cap: usize,
    steps: u64,
    exhausted_last: bool,
    scratch: SearchScratch,
    fit_hint: FitHintCache,
}

impl LcsAllocator {
    /// Build an LC+S allocator for `tree` with default budgets.
    pub fn new(tree: &FatTree) -> Self {
        Self::with_budget(tree, DEFAULT_STEP_BUDGET, DEFAULT_PER_POD_CAP)
    }

    /// Build with explicit search budgets.
    pub fn with_budget(tree: &FatTree, step_budget: u64, per_pod_cap: usize) -> Self {
        assert!(
            tree.is_full_bandwidth(),
            "LC+S requires a full-bandwidth fat-tree (m1 == w2, m2 == w3)"
        );
        LcsAllocator {
            step_budget,
            per_pod_cap,
            steps: 0,
            exhausted_last: false,
            scratch: SearchScratch::default(),
            fit_hint: FitHintCache::new(),
        }
    }

    /// The LC+S placement search, without committing resources.
    pub fn find_shape(&mut self, state: &SystemState, size: u32, bw_tenths: u16) -> Option<Shape> {
        let tree = state.tree();
        if size == 0 || size > state.free_node_count() {
            return None;
        }
        let w = tree.nodes_per_leaf();
        let l = tree.leaves_per_pod();
        let p = tree.num_pods();
        let view = Shared { bw_tenths };
        // Phases 1-3 mirror Jigsaw's (polynomially well-behaved) searches
        // and run unbudgeted, exactly like Jigsaw; the step budget — the
        // stand-in for the paper's 5 s timeout — applies to the general
        // least-constrained search only, which is where the worst case
        // lives (§5.3: "its worst case search time ... can be hours").
        let mut budget = Budget::unlimited();

        let shape = 'search: {
            // Single-leaf placement: no links, no bandwidth.
            if size <= w {
                for leaf in tree.leaves() {
                    if state.free_nodes_on_leaf(leaf) >= size {
                        break 'search Some(Shape::SingleLeaf { leaf, n: size });
                    }
                    budget.spend();
                }
            }

            // Two-level shapes, densest-first.
            for n_l in (1..=w.min(size)).rev() {
                let l_t = size / n_l;
                let n_r = size % n_l;
                if (l_t == 1 && n_r == 0) || l_t + u32::from(n_r > 0) > l {
                    continue;
                }
                for pod in tree.pods() {
                    if state.free_nodes_in_pod(pod) < size {
                        continue;
                    }
                    if let Some(pick) = find_two_level(
                        state,
                        &view,
                        &mut self.scratch,
                        pod,
                        l_t,
                        n_l,
                        n_r,
                        &mut budget,
                    ) {
                        break 'search Some(Shape::TwoLevel {
                            pod,
                            n_l,
                            leaves: pick.leaves,
                            l2_set: pick.l2_set,
                            rem_leaf: pick.rem_leaf.map(|(leaf, s_r)| (leaf, n_r, s_r)),
                        });
                    }
                    if budget.exhausted() {
                        break 'search None;
                    }
                }
            }

            // Fast path: Jigsaw's restricted full-leaf three-level search
            // first. Every Jigsaw placement is legal for LC+S (the
            // restriction is a strict subset of the conditions), and the
            // specialized search is orders of magnitude cheaper — without
            // it, large jobs could exhaust the step budget that stands in
            // for the paper's 5 s timeout and starve.
            for l_t in (1..=l).rev() {
                let n_t = l_t * w;
                let t_full = size / n_t;
                if t_full == 0 {
                    continue;
                }
                let n_rt = size % n_t;
                let (l_rt, n_rl) = (n_rt / w, n_rt % w);
                if (t_full == 1 && n_rt == 0) || t_full + u32::from(n_rt > 0) > p {
                    continue;
                }
                if let Some(pick) = find_three_level_full(
                    state,
                    &view,
                    &mut self.scratch,
                    l_t,
                    t_full,
                    l_rt,
                    n_rl,
                    &mut budget,
                ) {
                    break 'search Some(pick.into_shape());
                }
                if budget.exhausted() {
                    break 'search None;
                }
            }

            // General three-level shapes: n_L free to vary (the least
            // constrained placement space, §5.2.3). Step-budgeted.
            budget = Budget::resumed(budget.spent(), self.step_budget);
            for n_l in (1..=w.min(size)).rev() {
                for l_t in (1..=l).rev() {
                    let n_t = l_t * n_l;
                    let t_full = size / n_t;
                    if t_full == 0 {
                        continue;
                    }
                    let n_rt = size % n_t;
                    let (l_rt, n_rl) = (n_rt / n_l, n_rt % n_l);
                    if t_full == 1 && n_rt == 0 {
                        continue;
                    }
                    if t_full + u32::from(n_rt > 0) > p {
                        continue;
                    }
                    if let Some(pick) = find_three_level_general(
                        state,
                        &view,
                        &mut self.scratch,
                        n_l,
                        l_t,
                        t_full,
                        l_rt,
                        n_rl,
                        &mut budget,
                        self.per_pod_cap,
                    ) {
                        break 'search Some(pick.into_shape());
                    }
                    if budget.exhausted() {
                        break 'search None;
                    }
                }
            }
            None
        };
        self.steps = budget.spent();
        self.exhausted_last = shape.is_none() && budget.exhausted();
        shape
    }

    /// The budgeted least-constrained search, claiming on success (the body
    /// behind [`Allocator::decide`] and the empty-machine fit probe).
    fn search_claim(
        &mut self,
        state: &mut SystemState,
        req: &JobRequest,
    ) -> Result<Allocation, RejectReason> {
        if req.size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if req.size > state.free_node_count() {
            return Err(RejectReason::NoNodes {
                free: state.free_node_count(),
                requested: req.size,
            });
        }
        // Nodes are always exclusive; links carry the job's bandwidth class.
        let bw = req.bw_tenths.max(1);
        let Some(shape) = self.find_shape(state, req.size, bw) else {
            if self.exhausted_last {
                return Err(RejectReason::BudgetExhausted { spent: self.steps });
            }
            // Distinguish "no node placement at all" from "placement exists
            // but the bandwidth cap blocks it": retry ignoring bandwidth
            // (a zero reservation always fits under the cap). The retry
            // runs only on the already-failed path, so the primary search's
            // effort accounting is restored afterwards.
            let steps = self.steps;
            let placement_exists = self.find_shape(state, req.size, 0).is_some();
            self.steps = steps;
            return Err(if placement_exists {
                RejectReason::NoLinks
            } else {
                RejectReason::NoShape
            });
        };
        let alloc =
            Allocation::from_shape_with(&mut self.scratch, state, req.id, req.size, bw, shape);
        debug_assert_eq!(count_u32(alloc.nodes.len()), req.size);
        claim_allocation(state, &alloc);
        Ok(alloc)
    }
}

impl Allocator for LcsAllocator {
    fn name(&self) -> &'static str {
        "LC+S"
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        match self.search_claim(state, req) {
            Ok(alloc) => Decision::Admit(alloc),
            Err(reason) => {
                let (step_budget, per_pod_cap) = (self.step_budget, self.per_pod_cap);
                let tree = *state.tree();
                let hint = self.fit_hint.hint(req.size, req.bw_tenths, || {
                    let mut probe = LcsAllocator::with_budget(&tree, step_budget, per_pod_cap);
                    probe.search_claim(&mut SystemState::new(tree), req).is_ok()
                });
                // The probe must not disturb the primary search's effort
                // accounting (the probe allocator is separate, so it does
                // not), and `steps` still reflects the real attempt.
                Decision::Reject(Reject::with_hint(reason, hint))
            }
        }
    }

    fn recycle(&mut self, alloc: Allocation) {
        self.scratch.recycle(alloc);
    }

    fn last_search_steps(&self) -> u64 {
        self.steps
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::check_shape;
    use jigsaw_topology::ids::JobId;

    fn setup(radix: u32) -> (SystemState, LcsAllocator) {
        let tree = FatTree::maximal(radix).unwrap();
        let lcs = LcsAllocator::new(&tree);
        (SystemState::new(tree), lcs)
    }

    #[test]
    fn shapes_satisfy_formal_conditions() {
        let (state, mut lcs) = setup(8);
        for size in [1u32, 5, 9, 17, 33, 100] {
            let mut s = state.clone();
            if let Ok(a) = lcs.try_admit(&mut s, &JobRequest::with_bandwidth(JobId(size), size, 10))
            {
                check_shape(state.tree(), &a.shape).unwrap_or_else(|v| panic!("size {size}: {v}"));
                assert_eq!(a.nodes.len() as u32, size);
                assert_eq!(a.bw_tenths, 10);
            } else {
                panic!("size {size} must fit on an empty tree");
            }
        }
    }

    #[test]
    fn jobs_share_links_within_the_cap() {
        let (mut state, mut lcs) = setup(4);
        // Two jobs of 2.0 GB/s class exactly fill the 4.0 GB/s cap; they may
        // share links.
        let a = lcs
            .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(1), 8, 20))
            .unwrap();
        let b = lcs
            .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(2), 8, 20))
            .unwrap();
        assert!(
            !a.nodes.iter().any(|n| b.nodes.contains(n)),
            "nodes stay exclusive"
        );
        state.assert_consistent();
        // A third job needing links cannot fit bandwidth-wise anywhere —
        // but there are no nodes left anyway; release B and fill again
        // with a light job.
        lcs.release(&mut state, &b);
        let c = lcs
            .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(3), 8, 5))
            .unwrap();
        assert_eq!(c.nodes.len(), 8);
        state.assert_consistent();
    }

    #[test]
    fn bandwidth_cap_blocks_oversharing() {
        let (mut state, mut lcs) = setup(4);
        let tree = *state.tree();
        // Saturate every leaf uplink and spine link to the cap.
        for leaf in tree.leaves() {
            for pos in 0..tree.l2_per_pod() {
                assert!(state.try_reserve_leaf_link_bw(tree.leaf_link(leaf, pos), 40));
            }
        }
        // Multi-leaf jobs need links → must fail.
        // (2 nodes still fit on one leaf without links.)
        assert!(lcs
            .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(1), 2, 5))
            .is_ok());
        let reject = lcs
            .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(2), 6, 5))
            .unwrap_err();
        assert_eq!(
            reject.reason,
            RejectReason::NoLinks,
            "a placement exists but every link sits at the bandwidth cap"
        );
        // The job fits an empty machine; the saturated links make this a
        // fragmentation (reconfigurable) reject.
        assert!(reject.is_fragmentation());
    }

    #[test]
    fn partial_leaf_three_level_shapes_reachable() {
        // LC+S can use placements Jigsaw's full-leaf restriction forbids.
        let (mut state, mut lcs) = setup(4); // W = 2, pods of 4
        let tree = *state.tree();
        // Take one node on every leaf: no fully free leaf exists, so Jigsaw
        // can only do 1-node-per-leaf two-level shapes within a pod (max 2
        // nodes/pod)... a 6-node job needs three-level with n_L = 1.
        for leaf in tree.leaves() {
            state.claim_node(tree.node_at(leaf, 0), JobId(99));
        }
        let a = lcs
            .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(1), 6, 5))
            .unwrap();
        assert_eq!(a.nodes.len(), 6);
        check_shape(&tree, &a.shape).unwrap();
        match a.shape {
            Shape::ThreeLevel { n_l, .. } => assert_eq!(n_l, 1),
            other => panic!("expected a partial-leaf three-level shape, got {other:?}"),
        }
        state.assert_consistent();
    }

    #[test]
    fn budget_exhaustion_returns_none_gracefully() {
        let tree = FatTree::maximal(8).unwrap();
        let mut lcs = LcsAllocator::with_budget(&tree, 3, 2);
        let mut state = SystemState::new(tree);
        // A large awkward job with a 3-step budget: either found trivially
        // (empty tree fast path) or cleanly rejected; must not panic.
        let _ = lcs.try_admit(&mut state, &JobRequest::with_bandwidth(JobId(1), 97, 20));
        state.assert_consistent();
    }
}
