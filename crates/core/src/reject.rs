//! Typed allocation-rejection reasons, plus the fragmentation hint.
//!
//! `Allocator::decide` returns a [`crate::Decision`]; its `Reject` arm
//! carries a [`Reject`] so every consumer — the simulator's backfilling
//! diagnostics, the serve protocol's `ERR denied` replies, and the obs
//! rejection counters — can see *why* a placement failed, not just that it
//! did. Each scheme maps its failure paths onto the [`RejectReason`]
//! variant that names the binding constraint:
//!
//! * Baseline fails only on node shortage ([`RejectReason::NoNodes`]).
//! * Jigsaw/LaaS fail on shortage or because no legal *shape* exists under
//!   their placement restrictions ([`RejectReason::NoShape`]).
//! * TA additionally rejects placements its class-exclusivity rules forbid
//!   even though raw nodes are free ([`RejectReason::SharingConflict`]).
//! * LC+S can run out of search budget ([`RejectReason::BudgetExhausted`])
//!   or fail purely on link-bandwidth caps ([`RejectReason::NoLinks`]).
//!
//! On top of the reason, [`Reject::would_fit_empty`] records whether the
//! same request would have been admitted on an *empty* machine — the bit
//! that separates "rejected because the machine is fragmented" (a
//! defragmentation candidate) from "rejected because the request is
//! impossible under this scheme". Schemes compute it once per distinct
//! `(size, bandwidth)` through a [`FitHintCache`] so the reject path stays
//! allocation-free in steady state.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why an allocation attempt was rejected: the binding constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The request asked for zero nodes.
    ZeroSize,
    /// Not enough free nodes on the machine, full stop.
    NoNodes {
        /// Free nodes at the time of the attempt.
        free: u32,
        /// Nodes the job asked for.
        requested: u32,
    },
    /// Enough nodes are free, but no placement satisfies the scheme's
    /// shape restrictions (external fragmentation).
    NoShape,
    /// A node placement exists, but required link bandwidth is unavailable
    /// under the sharing cap.
    NoLinks,
    /// The search gave up after spending its backtracking-step budget
    /// (LC+S's stand-in for the paper's 5 s timeout).
    BudgetExhausted {
        /// Steps spent before giving up.
        spent: u64,
    },
    /// The scheme's class-exclusivity rules forbid sharing the required
    /// leaves/pods with resident jobs (TA's internal link fragmentation).
    SharingConflict,
}

impl RejectReason {
    /// Stable snake_case names of every variant, in
    /// [`RejectReason::kind_index`] order — used to pre-register per-reason
    /// metric labels.
    pub const ALL_KINDS: [&'static str; 6] = [
        "zero_size",
        "no_nodes",
        "no_shape",
        "no_links",
        "budget_exhausted",
        "sharing_conflict",
    ];

    /// Stable snake_case name of this variant (a metric label value).
    pub fn kind(&self) -> &'static str {
        Self::ALL_KINDS[self.kind_index()]
    }

    /// Index of this variant into [`RejectReason::ALL_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            RejectReason::ZeroSize => 0,
            RejectReason::NoNodes { .. } => 1,
            RejectReason::NoShape => 2,
            RejectReason::NoLinks => 3,
            RejectReason::BudgetExhausted { .. } => 4,
            RejectReason::SharingConflict => 5,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::ZeroSize => write!(f, "zero-size request"),
            RejectReason::NoNodes { free, requested } => {
                write!(
                    f,
                    "not enough free nodes ({free} free, {requested} requested)"
                )
            }
            RejectReason::NoShape => write!(f, "no legal placement shape"),
            RejectReason::NoLinks => write!(f, "insufficient link bandwidth"),
            RejectReason::BudgetExhausted { spent } => {
                write!(f, "search budget exhausted after {spent} steps")
            }
            RejectReason::SharingConflict => write!(f, "class-sharing rules forbid placement"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// A rejection: the typed [`RejectReason`] plus the fragmentation hint.
///
/// `would_fit_empty` is `true` when the same request would have been
/// admitted on an empty machine — the rejection is an artifact of the
/// *current occupancy*, not of the request itself, so a bounded set of
/// migrations may be able to recover the capacity (see [`crate::defrag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reject {
    /// The binding constraint that caused the rejection.
    pub reason: RejectReason,
    /// `true` when the same request fits an empty machine under this
    /// scheme: the rejection is fragmentation, not impossibility.
    pub would_fit_empty: bool,
}

impl Reject {
    /// A rejection with the hint unset (the request is impossible or the
    /// caller did not probe).
    pub fn new(reason: RejectReason) -> Reject {
        Reject {
            reason,
            would_fit_empty: false,
        }
    }

    /// A rejection with an explicit fragmentation hint.
    pub fn with_hint(reason: RejectReason, would_fit_empty: bool) -> Reject {
        Reject {
            reason,
            would_fit_empty,
        }
    }

    /// Stable snake_case name of the reason (a metric label value).
    pub fn kind(&self) -> &'static str {
        self.reason.kind()
    }

    /// Index of the reason into [`RejectReason::ALL_KINDS`].
    pub fn kind_index(&self) -> usize {
        self.reason.kind_index()
    }

    /// `true` when this rejection is worth handing to the defragmenter:
    /// the request fits an empty machine, and the reason is one occupancy
    /// can cause. `ZeroSize` never qualifies, and `NoNodes` means the raw
    /// capacity is missing — no rearrangement recovers nodes.
    pub fn is_fragmentation(&self) -> bool {
        self.would_fit_empty
            && matches!(
                self.reason,
                RejectReason::NoShape
                    | RejectReason::NoLinks
                    | RejectReason::SharingConflict
                    | RejectReason::BudgetExhausted { .. }
            )
    }
}

impl From<RejectReason> for Reject {
    fn from(reason: RejectReason) -> Reject {
        Reject::new(reason)
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.reason.fmt(f)?;
        if self.would_fit_empty {
            write!(f, " (fragmentation: would fit an empty machine)")?;
        }
        Ok(())
    }
}

impl std::error::Error for Reject {}

/// Memoized answers to "would `(size, bw)` fit an empty machine?".
///
/// The probe that answers the question builds a fresh [`SystemState`] and
/// runs a pristine search — heap work that must never happen on the
/// steady-state reject path (see `core/tests/zero_alloc.rs`). Each scheme
/// owns one of these caches; the first rejection of a given
/// `(size, bw_tenths)` pays for the probe, every later one is a hash
/// lookup.
///
/// [`SystemState`]: jigsaw_topology::SystemState
#[derive(Debug, Clone, Default)]
pub struct FitHintCache {
    hints: HashMap<(u32, u16), bool>,
}

impl FitHintCache {
    /// An empty cache.
    pub fn new() -> FitHintCache {
        FitHintCache::default()
    }

    /// The cached hint for `(size, bw_tenths)`, running `probe` on a miss.
    pub fn hint(&mut self, size: u32, bw_tenths: u16, probe: impl FnOnce() -> bool) -> bool {
        *self.hints.entry((size, bw_tenths)).or_insert_with(probe)
    }

    /// Number of distinct `(size, bw)` classes probed so far.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// `true` when no probe has run yet.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_exhaustive_and_consistent() {
        let variants = [
            RejectReason::ZeroSize,
            RejectReason::NoNodes {
                free: 1,
                requested: 2,
            },
            RejectReason::NoShape,
            RejectReason::NoLinks,
            RejectReason::BudgetExhausted { spent: 3 },
            RejectReason::SharingConflict,
        ];
        assert_eq!(variants.len(), RejectReason::ALL_KINDS.len());
        for (i, v) in variants.iter().enumerate() {
            assert_eq!(v.kind_index(), i);
            assert_eq!(v.kind(), RejectReason::ALL_KINDS[i]);
            // The wrapper delegates.
            assert_eq!(Reject::new(*v).kind(), v.kind());
            assert_eq!(Reject::new(*v).kind_index(), i);
        }
    }

    #[test]
    fn display_mentions_the_numbers() {
        let r = RejectReason::NoNodes {
            free: 3,
            requested: 8,
        };
        assert!(r.to_string().contains("3 free"));
        assert!(r.to_string().contains("8 requested"));
        assert!(RejectReason::BudgetExhausted { spent: 42 }
            .to_string()
            .contains("42 steps"));
    }

    #[test]
    fn display_surfaces_the_fragmentation_hint() {
        let frag = Reject::with_hint(RejectReason::NoShape, true);
        assert!(frag.to_string().contains("fragmentation"));
        let hard = Reject::new(RejectReason::NoShape);
        assert!(!hard.to_string().contains("fragmentation"));
    }

    #[test]
    fn fragmentation_predicate_requires_hint_and_occupancy_reason() {
        assert!(Reject::with_hint(RejectReason::NoShape, true).is_fragmentation());
        assert!(Reject::with_hint(RejectReason::NoLinks, true).is_fragmentation());
        assert!(Reject::with_hint(RejectReason::SharingConflict, true).is_fragmentation());
        // No hint: could be an impossible request.
        assert!(!Reject::new(RejectReason::NoShape).is_fragmentation());
        // NoNodes: capacity is genuinely missing, migrations free nothing.
        assert!(!Reject::with_hint(
            RejectReason::NoNodes {
                free: 1,
                requested: 2
            },
            true
        )
        .is_fragmentation());
        assert!(!Reject::with_hint(RejectReason::ZeroSize, true).is_fragmentation());
    }

    #[test]
    fn serde_roundtrip() {
        let r = RejectReason::NoNodes {
            free: 3,
            requested: 8,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RejectReason>(&json).unwrap(), r);

        let wrapped = Reject::with_hint(r, true);
        let json = serde_json::to_string(&wrapped).unwrap();
        assert!(json.contains("would_fit_empty"), "label-based: {json}");
        assert_eq!(serde_json::from_str::<Reject>(&json).unwrap(), wrapped);
    }

    #[test]
    fn fit_hint_cache_probes_once_per_class() {
        let mut cache = FitHintCache::new();
        let mut probes = 0;
        for _ in 0..3 {
            let hit = cache.hint(8, 10, || {
                probes += 1;
                true
            });
            assert!(hit);
        }
        assert_eq!(probes, 1, "one probe per (size, bw) class");
        assert!(!cache.hint(9, 10, || false));
        assert_eq!(cache.len(), 2);
    }
}
