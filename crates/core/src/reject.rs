//! Typed allocation-rejection reasons.
//!
//! `Allocator::allocate` returns `Result<Allocation, Reject>` so every
//! consumer — the simulator's backfilling diagnostics, the serve protocol's
//! `ERR denied` replies, and the obs rejection counters — can see *why* a
//! placement failed, not just that it did. Each scheme maps its failure
//! paths onto the variant that names the binding constraint:
//!
//! * Baseline fails only on node shortage ([`Reject::NoNodes`]).
//! * Jigsaw/LaaS fail on shortage or because no legal *shape* exists under
//!   their placement restrictions ([`Reject::NoShape`]).
//! * TA additionally rejects placements its class-exclusivity rules forbid
//!   even though raw nodes are free ([`Reject::SharingConflict`]).
//! * LC+S can run out of search budget ([`Reject::BudgetExhausted`]) or
//!   fail purely on link-bandwidth caps ([`Reject::NoLinks`]).

use serde::{Deserialize, Serialize};

/// Why an allocation attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reject {
    /// The request asked for zero nodes.
    ZeroSize,
    /// Not enough free nodes on the machine, full stop.
    NoNodes {
        /// Free nodes at the time of the attempt.
        free: u32,
        /// Nodes the job asked for.
        requested: u32,
    },
    /// Enough nodes are free, but no placement satisfies the scheme's
    /// shape restrictions (external fragmentation).
    NoShape,
    /// A node placement exists, but required link bandwidth is unavailable
    /// under the sharing cap.
    NoLinks,
    /// The search gave up after spending its backtracking-step budget
    /// (LC+S's stand-in for the paper's 5 s timeout).
    BudgetExhausted {
        /// Steps spent before giving up.
        spent: u64,
    },
    /// The scheme's class-exclusivity rules forbid sharing the required
    /// leaves/pods with resident jobs (TA's internal link fragmentation).
    SharingConflict,
}

impl Reject {
    /// Stable snake_case names of every variant, in [`Reject::kind_index`]
    /// order — used to pre-register per-reason metric labels.
    pub const ALL_KINDS: [&'static str; 6] = [
        "zero_size",
        "no_nodes",
        "no_shape",
        "no_links",
        "budget_exhausted",
        "sharing_conflict",
    ];

    /// Stable snake_case name of this variant (a metric label value).
    pub fn kind(&self) -> &'static str {
        Self::ALL_KINDS[self.kind_index()]
    }

    /// Index of this variant into [`Reject::ALL_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Reject::ZeroSize => 0,
            Reject::NoNodes { .. } => 1,
            Reject::NoShape => 2,
            Reject::NoLinks => 3,
            Reject::BudgetExhausted { .. } => 4,
            Reject::SharingConflict => 5,
        }
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::ZeroSize => write!(f, "zero-size request"),
            Reject::NoNodes { free, requested } => {
                write!(
                    f,
                    "not enough free nodes ({free} free, {requested} requested)"
                )
            }
            Reject::NoShape => write!(f, "no legal placement shape"),
            Reject::NoLinks => write!(f, "insufficient link bandwidth"),
            Reject::BudgetExhausted { spent } => {
                write!(f, "search budget exhausted after {spent} steps")
            }
            Reject::SharingConflict => write!(f, "class-sharing rules forbid placement"),
        }
    }
}

impl std::error::Error for Reject {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_exhaustive_and_consistent() {
        let variants = [
            Reject::ZeroSize,
            Reject::NoNodes {
                free: 1,
                requested: 2,
            },
            Reject::NoShape,
            Reject::NoLinks,
            Reject::BudgetExhausted { spent: 3 },
            Reject::SharingConflict,
        ];
        assert_eq!(variants.len(), Reject::ALL_KINDS.len());
        for (i, v) in variants.iter().enumerate() {
            assert_eq!(v.kind_index(), i);
            assert_eq!(v.kind(), Reject::ALL_KINDS[i]);
        }
    }

    #[test]
    fn display_mentions_the_numbers() {
        let r = Reject::NoNodes {
            free: 3,
            requested: 8,
        };
        assert!(r.to_string().contains("3 free"));
        assert!(r.to_string().contains("8 requested"));
        assert!(Reject::BudgetExhausted { spent: 42 }
            .to_string()
            .contains("42 steps"));
    }

    #[test]
    fn serde_roundtrip() {
        let r = Reject::NoNodes {
            free: 3,
            requested: 8,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<Reject>(&json).unwrap(), r);
    }
}
