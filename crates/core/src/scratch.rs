//! Reusable buffers for the allocation hot path.
//!
//! Every search in [`crate::search`] and every grant built by
//! [`crate::alloc::Allocation::from_shape_with`] draws its working vectors
//! from a [`SearchScratch`] instead of the global allocator. Buffers flow in
//! a cycle:
//!
//! 1. a search **takes** candidate/intersection buffers, and **puts** them
//!    back before returning (even on failure paths),
//! 2. the winning pick's vectors (shape leaves, trees, spine sets, node and
//!    link lists) travel *out* inside the returned [`Allocation`],
//! 3. when the job ends, [`SearchScratch::recycle`] dismantles the
//!    allocation and returns those vectors to the pools.
//!
//! After a warm-up period the pools hold buffers with steady-state
//! capacities and the allocate path performs **zero heap allocations** —
//! verified by a counting-`GlobalAlloc` test (`tests/zero_alloc.rs`).
//!
//! The pools are pure caches: they never affect results, only where the
//! backing memory comes from. `Clone` therefore produces *empty* pools —
//! cloning an allocator for a scratch replay must not copy (or steal) the
//! original's warm buffers.

use crate::alloc::{Allocation, Shape};
use crate::search::PodSolution;
use jigsaw_topology::ids::{LeafId, LeafLinkId, NodeId, PodId, SpineLinkId};

/// A pool of reusable `Vec<T>` buffers. `take` hands out an empty vector
/// (reusing a previously returned buffer's capacity when one is available);
/// `put` clears a buffer and shelves it for the next `take`.
#[derive(Debug)]
pub(crate) struct Pool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool { free: Vec::new() }
    }
}

impl<T> Pool<T> {
    /// An empty vector, backed by pooled capacity when available.
    #[inline]
    pub(crate) fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Contents are discarded; capacity is
    /// kept. Buffers that never allocated are not worth shelving.
    #[inline]
    pub(crate) fn put(&mut self, mut buf: Vec<T>) {
        if buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }
}

/// The per-allocator buffer arena threaded through every search and grant.
/// See the module docs for the buffer life cycle.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Leaf lists: search `chosen` stacks, shape/tree leaf sets.
    pub(crate) leaves: Pool<LeafId>,
    /// Candidate pod lists for the three-level searches.
    pub(crate) pods: Pool<PodId>,
    /// Node lists for [`Allocation::nodes`].
    pub(crate) nodes: Pool<NodeId>,
    /// `u64` mask vectors: per-position spine intersections and spine sets.
    pub(crate) words: Pool<u64>,
    /// `(leaf, uplink mask)` candidate lists of the two-level searches.
    pub(crate) cands: Pool<(LeafId, u64)>,
    /// L2 position lists of the general three-level search.
    pub(crate) positions: Pool<u32>,
    /// `(pod, sub-solution index)` stacks of the general search.
    pub(crate) picks: Pool<(PodId, usize)>,
    /// Full-tree lists for [`Shape::ThreeLevel`].
    pub(crate) trees: Pool<crate::alloc::TreeAlloc>,
    /// Leaf↔L2 link lists for [`Allocation::leaf_links`].
    pub(crate) leaf_links: Pool<LeafLinkId>,
    /// L2↔spine link lists for [`Allocation::spine_links`].
    pub(crate) spine_links: Pool<SpineLinkId>,
    /// Per-pod sub-solution lists of the general search.
    pub(crate) sols: Pool<PodSolution>,
    /// The outer `(pod, sub-solutions)` table of the general search.
    pub(crate) sol_lists: Pool<(PodId, Vec<PodSolution>)>,
}

/// Pools are caches, not state: a cloned allocator starts with cold pools
/// rather than copying the original's warm buffers.
impl Clone for SearchScratch {
    fn clone(&self) -> Self {
        SearchScratch::default()
    }
}

impl SearchScratch {
    /// Dismantle a spent allocation and return every vector it carried to
    /// the pools, closing the buffer cycle. Call after the allocation has
    /// been released from the [`jigsaw_topology::SystemState`]; the next
    /// allocate reuses the capacity instead of asking the heap.
    pub fn recycle(&mut self, alloc: Allocation) {
        let Allocation {
            nodes,
            leaf_links,
            spine_links,
            shape,
            ..
        } = alloc;
        self.nodes.put(nodes);
        self.leaf_links.put(leaf_links);
        self.spine_links.put(spine_links);
        self.recycle_shape(shape);
    }

    /// Return a shape's vectors to the pools.
    pub(crate) fn recycle_shape(&mut self, shape: Shape) {
        match shape {
            Shape::SingleLeaf { .. } | Shape::Unstructured => {}
            Shape::TwoLevel { leaves, .. } => self.leaves.put(leaves),
            Shape::ThreeLevel {
                mut trees,
                spine_sets,
                rem_tree,
                ..
            } => {
                for t in trees.drain(..) {
                    self.leaves.put(t.leaves);
                }
                self.trees.put(trees);
                self.words.put(spine_sets);
                if let Some(r) = rem_tree {
                    self.leaves.put(r.leaves);
                    self.words.put(r.spine_sets);
                }
            }
        }
    }

    /// Return the general search's per-pod sub-solution table to the pools.
    pub(crate) fn put_solutions(&mut self, mut solutions: Vec<(PodId, Vec<PodSolution>)>) {
        for (_, mut sltns) in solutions.drain(..) {
            for s in sltns.drain(..) {
                self.leaves.put(s.leaves);
            }
            self.sols.put(sltns);
        }
        self.sol_lists.put(solutions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::TreeAlloc;
    use jigsaw_topology::ids::JobId;

    #[test]
    fn pool_reuses_capacity() {
        let mut pool: Pool<u64> = Pool::default();
        let mut v = pool.take();
        v.extend_from_slice(&[1, 2, 3, 4]);
        let cap = v.capacity();
        pool.put(v);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "capacity survives the pool");
        pool.put(v2);
        // Zero-capacity buffers are not shelved.
        pool.put(Vec::new());
        let v3 = pool.take();
        assert_eq!(v3.capacity(), cap);
    }

    #[test]
    fn recycle_returns_every_shape_vector() {
        let mut scratch = SearchScratch::default();
        let alloc = Allocation {
            job: JobId(1),
            requested: 4,
            nodes: vec![NodeId(0), NodeId(1)],
            leaf_links: vec![LeafLinkId(0)],
            spine_links: vec![SpineLinkId(0)],
            bw_tenths: 0,
            shape: Shape::ThreeLevel {
                n_l: 2,
                l_t: 1,
                l2_set: 0b1,
                trees: vec![TreeAlloc {
                    pod: PodId(0),
                    leaves: vec![LeafId(0)],
                }],
                spine_sets: vec![0b1],
                rem_tree: None,
            },
        };
        scratch.recycle(alloc);
        assert_eq!(scratch.nodes.take().capacity(), 2);
        assert_eq!(scratch.leaves.take().capacity(), 1);
        assert_eq!(scratch.words.take().capacity(), 1);
        assert_eq!(scratch.trees.take().capacity(), 1);
        assert_eq!(scratch.leaf_links.take().capacity(), 1);
        assert_eq!(scratch.spine_links.take().capacity(), 1);
    }

    #[test]
    fn clone_starts_cold() {
        let mut scratch = SearchScratch::default();
        let mut v = scratch.words.take();
        v.push(7);
        scratch.words.put(v);
        let mut cold = scratch.clone();
        assert_eq!(cold.words.take().capacity(), 0);
        assert!(
            scratch.words.take().capacity() > 0,
            "original keeps its buffers"
        );
    }
}
