//! Shared search machinery behind the condition-respecting allocators.
//!
//! This module implements the recursive-backtracking searches of the paper's
//! Algorithm 1 (`FIND_L2`, `FIND_ALL_L2`, `FIND_L3`) once, parameterized
//! over a [`LinkView`] so the same code serves:
//!
//! * **Jigsaw / LaaS** — exclusive link availability straight from the
//!   [`SystemState`] masks,
//! * **LC+S** — bandwidth-aware availability ("the link has ≥ b spare
//!   tenths of GB/s under the 80% cap").
//!
//! The three-level search comes in two flavors:
//!
//! * [`find_three_level_full`] — Jigsaw's restriction (§4): all leaves full
//!   except the remainder leaf. On a full-bandwidth tree a full leaf uses
//!   *all* `M` uplinks, so condition 5's "same L2 positions in every tree"
//!   is automatically the full set and the per-pod sub-solutions collapse to
//!   fully-free-leaf counts; only the cross-tree spine matching (the paper's
//!   `FIND_L3`) needs backtracking.
//! * [`find_three_level_general`] — the least-constrained search used by
//!   LC+S, where `n_L` may be smaller than the leaf size. Per pod we
//!   enumerate up to a cap of two-level sub-solutions (the paper's
//!   `FIND_ALL_L2` with a cap standing in for the 5 s wall-clock timeout),
//!   then backtrack over (pod, sub-solution) pairs.

use crate::alloc::{RemTree, Shape, TreeAlloc};
use crate::scratch::SearchScratch;
use jigsaw_topology::bitset::{iter_mask, lowest_n_bits};
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::ids::{L2Id, LeafId, PodId};
use jigsaw_topology::state::mask_of;
use jigsaw_topology::SystemState;

/// How the search decides whether a link can carry the job.
pub trait LinkView {
    /// Bitmask of `leaf`'s uplink positions usable by the job.
    fn leaf_avail_mask(&self, state: &SystemState, leaf: LeafId) -> u64;
    /// Bitmask of `l2`'s spine slots usable by the job.
    fn spine_avail_mask(&self, state: &SystemState, l2: L2Id) -> u64;
    /// `true` iff `leaf` can serve as a *full* leaf: every node free and
    /// every uplink usable.
    fn is_full_leaf(&self, state: &SystemState, leaf: LeafId) -> bool;
    /// Number of leaves in `pod` satisfying [`LinkView::is_full_leaf`].
    fn full_leaves_in_pod(&self, state: &SystemState, pod: PodId) -> u32;
}

/// Exclusive ownership (Jigsaw, LaaS): a link is usable iff unowned and
/// carrying no shared bandwidth.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exclusive;

impl LinkView for Exclusive {
    #[inline]
    fn leaf_avail_mask(&self, state: &SystemState, leaf: LeafId) -> u64 {
        // Exclude links carrying fractional bandwidth (relevant only if
        // schemes are mixed on one state; individually harmless).
        let mut mask = state.leaf_uplink_free_mask(leaf);
        if mask != 0 {
            for pos in iter_mask(mask) {
                if state.leaf_link_bw_used(state.tree().leaf_link(leaf, pos)) != 0 {
                    mask &= !(1 << pos);
                }
            }
        }
        mask
    }

    #[inline]
    fn spine_avail_mask(&self, state: &SystemState, l2: L2Id) -> u64 {
        let mut mask = state.spine_uplink_free_mask(l2);
        if mask != 0 {
            for slot in iter_mask(mask) {
                if state.spine_link_bw_used(state.tree().spine_link(l2, slot)) != 0 {
                    mask &= !(1 << slot);
                }
            }
        }
        mask
    }

    #[inline]
    fn is_full_leaf(&self, state: &SystemState, leaf: LeafId) -> bool {
        state.is_leaf_fully_free(leaf)
    }

    #[inline]
    fn full_leaves_in_pod(&self, state: &SystemState, pod: PodId) -> u32 {
        state.fully_free_leaves_in_pod(pod)
    }
}

/// Bandwidth-aware availability (LC+S): a link is usable iff it has at
/// least `bw_tenths` spare capacity under the cap.
#[derive(Debug, Clone, Copy)]
pub struct Shared {
    /// The job's per-link demand, tenths of GB/s.
    pub bw_tenths: u16,
}

impl LinkView for Shared {
    fn leaf_avail_mask(&self, state: &SystemState, leaf: LeafId) -> u64 {
        let tree = state.tree();
        let mut mask = 0u64;
        for pos in 0..tree.l2_per_pod() {
            if state.leaf_link_bw_spare(tree.leaf_link(leaf, pos)) >= self.bw_tenths {
                mask |= 1 << pos;
            }
        }
        mask
    }

    fn spine_avail_mask(&self, state: &SystemState, l2: L2Id) -> u64 {
        let tree = state.tree();
        let mut mask = 0u64;
        for slot in 0..tree.spines_per_group() {
            if state.spine_link_bw_spare(tree.spine_link(l2, slot)) >= self.bw_tenths {
                mask |= 1 << slot;
            }
        }
        mask
    }

    fn is_full_leaf(&self, state: &SystemState, leaf: LeafId) -> bool {
        state.free_nodes_on_leaf(leaf) == state.tree().nodes_per_leaf()
            && self.leaf_avail_mask(state, leaf) == mask_of(state.tree().l2_per_pod())
    }

    fn full_leaves_in_pod(&self, state: &SystemState, pod: PodId) -> u32 {
        count_u32(
            state
                .tree()
                .leaves_of_pod(pod)
                .filter(|&l| self.is_full_leaf(state, l))
                .count(),
        )
    }
}

/// Deterministic search budget: the paper guards LC+S's worst-case
/// hours-long search with a wall-clock timeout; we use a step budget so
/// simulations stay reproducible.
#[derive(Debug, Clone)]
pub struct Budget {
    steps: u64,
    limit: u64,
}

impl Budget {
    /// A budget allowing `limit` backtracking steps.
    pub fn new(limit: u64) -> Self {
        Budget { steps: 0, limit }
    }

    /// Effectively unlimited (Jigsaw's restricted search is fast; see §6.4).
    pub fn unlimited() -> Self {
        Budget::new(u64::MAX)
    }

    /// A budget that has already spent `spent` steps and may spend `limit`
    /// more (used to carry accounting across search phases).
    pub fn resumed(spent: u64, limit: u64) -> Self {
        Budget {
            steps: spent,
            limit: spent.saturating_add(limit),
        }
    }

    /// Record one step. Returns `false` once the budget is exhausted.
    #[inline]
    pub fn spend(&mut self) -> bool {
        self.steps += 1;
        self.steps <= self.limit
    }

    /// Steps spent so far.
    pub fn spent(&self) -> u64 {
        self.steps
    }

    /// `true` once the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.steps > self.limit
    }
}

/// Result of a two-level (single-pod) search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelPick {
    /// The `L_T` full leaves.
    pub leaves: Vec<LeafId>,
    /// The chosen common L2 position set `S`, `|S| = n_L`.
    pub l2_set: u64,
    /// Optional remainder leaf `(leaf, S^r)` — the node count is the
    /// caller's `n_r`.
    pub rem_leaf: Option<(LeafId, u64)>,
}

/// The paper's `FIND_L2`: search `pod` for `l_t` leaves with `n_l` nodes
/// each sharing `n_l` usable uplink positions, plus (if `n_r > 0`) a
/// remainder leaf with `n_r` nodes whose usable uplinks cover `n_r`
/// positions of the common set.
#[allow(clippy::too_many_arguments)]
pub fn find_two_level<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    pod: PodId,
    l_t: u32,
    n_l: u32,
    n_r: u32,
    budget: &mut Budget,
) -> Option<TwoLevelPick> {
    let tree = state.tree();
    debug_assert!(n_l >= 1 && n_r < n_l);
    debug_assert!(l_t + u32::from(n_r > 0) <= tree.leaves_per_pod());

    // Index skip: no leaf of the pod can host n_l nodes — nothing to scan.
    if state.max_free_nodes_on_leaf_in_pod(pod) < n_l {
        return None;
    }

    // Candidate full leaves: enough free nodes and enough usable uplinks.
    let mut candidates = scratch.cands.take();
    for leaf in tree.leaves_of_pod(pod) {
        if state.free_nodes_on_leaf(leaf) >= n_l {
            let mask = view.leaf_avail_mask(state, leaf);
            if mask.count_ones() >= n_l {
                candidates.push((leaf, mask));
            }
        }
    }
    let pick = if count_u32(candidates.len()) < l_t {
        None
    } else {
        let mut chosen = scratch.leaves.take();
        let pick = search_leaves(
            state,
            view,
            scratch,
            pod,
            &candidates,
            0,
            mask_of(tree.l2_per_pod()),
            l_t,
            n_l,
            n_r,
            &mut chosen,
            budget,
        );
        scratch.leaves.put(chosen);
        pick
    };
    scratch.cands.put(candidates);
    pick
}

#[allow(clippy::too_many_arguments)]
fn search_leaves<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    pod: PodId,
    candidates: &[(LeafId, u64)],
    idx: usize,
    inter: u64,
    l_t: u32,
    n_l: u32,
    n_r: u32,
    chosen: &mut Vec<LeafId>,
    budget: &mut Budget,
) -> Option<TwoLevelPick> {
    if count_u32(chosen.len()) == l_t {
        return complete_two_level(state, view, scratch, pod, inter, n_l, n_r, chosen, budget);
    }
    if budget.exhausted() {
        return None;
    }
    let needed = l_t as usize - chosen.len();
    // Not enough candidates left to finish.
    if candidates.len() - idx < needed {
        return None;
    }
    for i in idx..=candidates.len() - needed {
        if !budget.spend() {
            return None;
        }
        let (leaf, mask) = candidates[i];
        let next = inter & mask;
        if next.count_ones() < n_l {
            continue;
        }
        chosen.push(leaf);
        if let Some(pick) = search_leaves(
            state,
            view,
            scratch,
            pod,
            candidates,
            i + 1,
            next,
            l_t,
            n_l,
            n_r,
            chosen,
            budget,
        ) {
            return Some(pick);
        }
        chosen.pop();
    }
    None
}

/// Base case of the two-level search: the full leaves are fixed with common
/// usable positions `inter`; pick `S` (and the remainder leaf if needed).
#[allow(clippy::too_many_arguments)]
fn complete_two_level<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    pod: PodId,
    inter: u64,
    n_l: u32,
    n_r: u32,
    chosen: &[LeafId],
    budget: &mut Budget,
) -> Option<TwoLevelPick> {
    debug_assert!(inter.count_ones() >= n_l);
    if n_r == 0 {
        let mut leaves = scratch.leaves.take();
        leaves.extend_from_slice(chosen);
        return Some(TwoLevelPick {
            leaves,
            l2_set: lowest_n_bits(inter, n_l),
            rem_leaf: None,
        });
    }
    let tree = state.tree();
    for leaf in tree.leaves_of_pod(pod) {
        if chosen.contains(&leaf) || state.free_nodes_on_leaf(leaf) < n_r {
            continue;
        }
        if !budget.spend() {
            return None;
        }
        let rem_avail = view.leaf_avail_mask(state, leaf) & inter;
        if rem_avail.count_ones() < n_r {
            continue;
        }
        // Build S to contain the remainder leaf's n_r positions, then fill
        // with further positions from the intersection.
        let s_r = lowest_n_bits(rem_avail, n_r);
        let mut l2_set = s_r;
        let fill = inter & !s_r;
        l2_set |= lowest_n_bits(fill, n_l - n_r);
        let mut leaves = scratch.leaves.take();
        leaves.extend_from_slice(chosen);
        return Some(TwoLevelPick {
            leaves,
            l2_set,
            rem_leaf: Some((leaf, s_r)),
        });
    }
    None
}

/// Result of a three-level search, ready to become a
/// [`Shape::ThreeLevel`].
#[derive(Debug, Clone)]
pub struct ThreeLevelPick {
    /// Nodes per full leaf.
    pub n_l: u32,
    /// Full leaves per full tree.
    pub l_t: u32,
    /// The common L2 position set `S`.
    pub l2_set: u64,
    /// The `T` full trees.
    pub trees: Vec<TreeAlloc>,
    /// Per-position spine sets `S*_i`.
    pub spine_sets: Vec<u64>,
    /// Optional remainder tree.
    pub rem_tree: Option<RemTree>,
}

impl ThreeLevelPick {
    /// Convert into an allocation shape.
    pub fn into_shape(self) -> Shape {
        Shape::ThreeLevel {
            n_l: self.n_l,
            l_t: self.l_t,
            l2_set: self.l2_set,
            trees: self.trees,
            spine_sets: self.spine_sets,
            rem_tree: self.rem_tree,
        }
    }
}

/// Jigsaw's restricted three-level search (`FIND_L3` with full leaves, §4):
/// find `t_full` pods contributing `l_t` fully-free leaves each, plus — if
/// `l_rt > 0 || n_rl > 0` — a remainder pod contributing `l_rt` fully-free
/// leaves and a remainder leaf with `n_rl` nodes, such that per L2 position
/// the chosen pods share enough free spine uplinks (condition 6).
///
/// Requires a full-bandwidth tree (`W == M`): a full leaf then uses all `M`
/// uplink positions, so `S` is the full set.
#[allow(clippy::too_many_arguments)]
pub fn find_three_level_full<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    l_t: u32,
    t_full: u32,
    l_rt: u32,
    n_rl: u32,
    budget: &mut Budget,
) -> Option<ThreeLevelPick> {
    let tree = state.tree();
    let m = tree.l2_per_pod();
    debug_assert!(tree.is_full_bandwidth());
    debug_assert!(t_full >= 1);
    debug_assert!(l_t >= 1 && l_t <= tree.leaves_per_pod());
    // Condition 1: the remainder tree holds fewer nodes than full trees.
    debug_assert!(l_rt < l_t, "remainder tree must be smaller than full trees");

    // Candidate full pods. The index checks are necessary conditions on
    // the ownership state, a superset of what any view can use: a full
    // leaf needs all W nodes free, and condition 6 needs ≥ l_t free spine
    // uplinks on every one of the pod's L2 switches — so pods failing
    // either index are skipped before any mask or per-leaf scan.
    let mut pods = scratch.pods.take();
    pods.extend(tree.pods().filter(|&p| {
        state.max_free_nodes_on_leaf_in_pod(p) == tree.nodes_per_leaf()
            && state.min_free_spine_slots_in_pod(p) >= l_t
            && view.full_leaves_in_pod(state, p) >= l_t
    }));
    let pick = if count_u32(pods.len()) < t_full {
        None
    } else {
        let mut inter = scratch.words.take();
        inter.resize(m as usize, mask_of(tree.spines_per_group()));
        let mut chosen = scratch.pods.take();
        let pick = search_pods_full(
            state,
            view,
            scratch,
            &pods,
            0,
            &inter,
            l_t,
            t_full,
            l_rt,
            n_rl,
            &mut chosen,
            budget,
        );
        scratch.pods.put(chosen);
        scratch.words.put(inter);
        pick
    };
    scratch.pods.put(pods);
    pick
}

#[allow(clippy::too_many_arguments)]
fn search_pods_full<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    pods: &[PodId],
    idx: usize,
    inter: &[u64],
    l_t: u32,
    t_full: u32,
    l_rt: u32,
    n_rl: u32,
    chosen: &mut Vec<PodId>,
    budget: &mut Budget,
) -> Option<ThreeLevelPick> {
    let tree = state.tree();
    if count_u32(chosen.len()) == t_full {
        return complete_three_level_full(
            state, view, scratch, chosen, inter, l_t, l_rt, n_rl, budget,
        );
    }
    if budget.exhausted() {
        return None;
    }
    let needed = t_full as usize - chosen.len();
    if pods.len() - idx < needed {
        return None;
    }
    for i in idx..=pods.len() - needed {
        if !budget.spend() {
            return None;
        }
        let pod = pods[i];
        let mut next = scratch.words.take();
        next.extend_from_slice(inter);
        let mut viable = true;
        for (pos, slot_mask) in next.iter_mut().enumerate() {
            *slot_mask &= view.spine_avail_mask(state, tree.l2_at(pod, count_u32(pos)));
            if slot_mask.count_ones() < l_t {
                viable = false;
                break;
            }
        }
        if !viable {
            scratch.words.put(next);
            continue;
        }
        chosen.push(pod);
        let pick = search_pods_full(
            state,
            view,
            scratch,
            pods,
            i + 1,
            &next,
            l_t,
            t_full,
            l_rt,
            n_rl,
            chosen,
            budget,
        );
        scratch.words.put(next);
        if pick.is_some() {
            return pick;
        }
        chosen.pop();
    }
    None
}

/// Base case of the full-leaf three-level search: the full pods are fixed
/// with per-position spine intersections `inter`; find the remainder pod
/// (if any) and construct the spine sets.
#[allow(clippy::too_many_arguments)]
fn complete_three_level_full<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    chosen: &[PodId],
    inter: &[u64],
    l_t: u32,
    l_rt: u32,
    n_rl: u32,
    budget: &mut Budget,
) -> Option<ThreeLevelPick> {
    let tree = state.tree();
    let m = tree.l2_per_pod();
    let n_l = tree.nodes_per_leaf();
    let l2_set = mask_of(m);

    if l_rt == 0 && n_rl == 0 {
        let mut spine_sets = scratch.words.take();
        spine_sets.extend(inter.iter().map(|&mask| lowest_n_bits(mask, l_t)));
        return Some(ThreeLevelPick {
            n_l,
            l_t,
            l2_set,
            trees: make_full_trees(state, view, scratch, chosen, l_t),
            spine_sets,
            rem_tree: None,
        });
    }

    // Search for the remainder pod. The remainder's full leaves need every
    // L2 of the pod to offer at least l_rt free spine uplinks, so the
    // pod-min index rejects hopeless pods before any budget is spent.
    // The two probe buffers are reused across candidate pods and recycled
    // on every exit path.
    let mut rem_full = scratch.leaves.take();
    let mut rem_spine = scratch.words.take();
    'rem: for pod in tree.pods() {
        if chosen.contains(&pod) {
            continue;
        }
        if state.min_free_spine_slots_in_pod(pod) < l_rt {
            continue;
        }
        if !budget.spend() {
            break 'rem;
        }
        if view.full_leaves_in_pod(state, pod) < l_rt {
            continue;
        }
        rem_full.clear();
        full_leaves_into(state, view, pod, l_rt, None, &mut rem_full);

        // Per-position usable spine slots of the remainder pod within the
        // intersection chosen so far.
        rem_spine.clear();
        rem_spine.extend(
            (0..m).map(|pos| {
                view.spine_avail_mask(state, tree.l2_at(pod, pos)) & inter[pos as usize]
            }),
        );

        // Pick the remainder leaf and its S^r positions.
        let mut rem_leaf = None;
        let mut s_r = 0u64;
        if n_rl > 0 {
            let mut found = false;
            'leaves: for leaf in tree.leaves_of_pod(pod) {
                if rem_full.contains(&leaf) || state.free_nodes_on_leaf(leaf) < n_rl {
                    continue;
                }
                let avail = view.leaf_avail_mask(state, leaf);
                if avail.count_ones() < n_rl {
                    continue;
                }
                // S^r must be positions where the remainder pod's L2 can
                // carry one extra spine uplink beyond l_rt.
                let mut mask = 0u64;
                let mut count = 0;
                for pos in iter_mask(avail) {
                    if rem_spine[pos as usize].count_ones() > l_rt {
                        mask |= 1 << pos;
                        count += 1;
                        if count == n_rl {
                            rem_leaf = Some((leaf, n_rl, mask));
                            s_r = mask;
                            found = true;
                            break 'leaves;
                        }
                    }
                }
            }
            if !found {
                continue 'rem;
            }
        }

        // Per-position feasibility for the full leaves of the remainder.
        for pos in 0..m {
            let need = l_rt + u32::from(s_r & (1 << pos) != 0);
            if rem_spine[pos as usize].count_ones() < need {
                continue 'rem;
            }
        }

        // Construct spine sets: the remainder part first (so S*^r_i ⊆ S*_i
        // by construction), then fill to l_t from the intersection.
        let mut spine_sets = scratch.words.take();
        spine_sets.resize(m as usize, 0);
        let mut rem_sets = scratch.words.take();
        rem_sets.resize(m as usize, 0);
        for pos in 0..m as usize {
            let need = l_rt + u32::from(s_r & (1 << pos) != 0);
            let rem_part = lowest_n_bits(rem_spine[pos], need);
            rem_sets[pos] = rem_part;
            let fill = inter[pos] & !rem_part;
            spine_sets[pos] = rem_part | lowest_n_bits(fill, l_t - need);
        }

        scratch.words.put(rem_spine);
        return Some(ThreeLevelPick {
            n_l,
            l_t,
            l2_set,
            trees: make_full_trees(state, view, scratch, chosen, l_t),
            spine_sets,
            rem_tree: Some(RemTree {
                pod,
                leaves: rem_full,
                rem_leaf,
                spine_sets: rem_sets,
            }),
        });
    }
    scratch.leaves.put(rem_full);
    scratch.words.put(rem_spine);
    None
}

/// One full tree per chosen pod, leaves drawn from the scratch pools.
fn make_full_trees<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    pods: &[PodId],
    l_t: u32,
) -> Vec<TreeAlloc> {
    let mut trees = scratch.trees.take();
    for &pod in pods {
        let mut leaves = scratch.leaves.take();
        full_leaves_into(state, view, pod, l_t, None, &mut leaves);
        trees.push(TreeAlloc { pod, leaves });
    }
    trees
}

/// The first `count` full leaves of `pod`, optionally skipping one leaf,
/// appended to `out` (cleared by the caller).
fn full_leaves_into<V: LinkView>(
    state: &SystemState,
    view: &V,
    pod: PodId,
    count: u32,
    skip: Option<LeafId>,
    out: &mut Vec<LeafId>,
) {
    debug_assert!(out.is_empty());
    for leaf in state.tree().leaves_of_pod(pod) {
        if count_u32(out.len()) == count {
            break;
        }
        if Some(leaf) != skip && view.is_full_leaf(state, leaf) {
            out.push(leaf);
        }
    }
    debug_assert_eq!(
        count_u32(out.len()),
        count,
        "caller verified full-leaf availability"
    );
}

/// One per-pod sub-solution of the general three-level search.
#[derive(Debug, Clone)]
pub(crate) struct PodSolution {
    pub(crate) leaves: Vec<LeafId>,
    /// Common usable uplink positions of the chosen leaves.
    pub(crate) inter: u64,
}

/// The least-constrained three-level search (LC+S): like
/// [`find_three_level_full`] but `n_l` may be smaller than the leaf size,
/// so the common L2 position set `S` must be discovered. Per pod, up to
/// `per_pod_cap` sub-solutions are enumerated (the paper's `FIND_ALL_L2`)
/// and the cross-pod combination is found by backtracking (`FIND_L3`).
#[allow(clippy::too_many_arguments)]
pub fn find_three_level_general<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    n_l: u32,
    l_t: u32,
    t_full: u32,
    l_rt: u32,
    n_rl: u32,
    budget: &mut Budget,
    per_pod_cap: usize,
) -> Option<ThreeLevelPick> {
    let tree = state.tree();
    debug_assert!(t_full >= 1 && n_l >= 1);

    // Enumerate sub-solutions per pod, skipping pods whose best leaf
    // cannot host n_l nodes (the collect would come back empty anyway).
    let mut solutions = scratch.sol_lists.take();
    let mut aborted = false;
    for pod in tree.pods() {
        if state.max_free_nodes_on_leaf_in_pod(pod) < n_l {
            continue;
        }
        if budget.exhausted() {
            aborted = true;
            break;
        }
        let mut sltns = scratch.sols.take();
        collect_pod_solutions(
            state,
            view,
            scratch,
            pod,
            l_t,
            n_l,
            per_pod_cap,
            &mut sltns,
            budget,
        );
        if sltns.is_empty() {
            scratch.sols.put(sltns);
        } else {
            solutions.push((pod, sltns));
        }
    }
    let pick = if aborted || count_u32(solutions.len()) < t_full {
        None
    } else {
        let m = tree.l2_per_pod();
        let mut spine_inter = scratch.words.take();
        spine_inter.resize(m as usize, mask_of(tree.spines_per_group()));
        let mut chosen = scratch.picks.take();
        let pick = search_pods_general(
            state,
            view,
            scratch,
            &solutions,
            0,
            mask_of(m),
            &spine_inter,
            n_l,
            l_t,
            t_full,
            l_rt,
            n_rl,
            &mut chosen,
            budget,
        );
        scratch.picks.put(chosen);
        scratch.words.put(spine_inter);
        pick
    };
    scratch.put_solutions(solutions);
    pick
}

/// Enumerate up to `cap` two-level sub-solutions (`l_t` leaves × `n_l`
/// nodes, no remainder) inside `pod`.
#[allow(clippy::too_many_arguments)]
fn collect_pod_solutions<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    pod: PodId,
    l_t: u32,
    n_l: u32,
    cap: usize,
    out: &mut Vec<PodSolution>,
    budget: &mut Budget,
) {
    let tree = state.tree();
    let mut candidates = scratch.cands.take();
    for leaf in tree.leaves_of_pod(pod) {
        if state.free_nodes_on_leaf(leaf) >= n_l {
            let mask = view.leaf_avail_mask(state, leaf);
            if mask.count_ones() >= n_l {
                candidates.push((leaf, mask));
            }
        }
    }
    if count_u32(candidates.len()) >= l_t {
        let mut chosen = scratch.leaves.take();
        collect_rec(
            scratch,
            &candidates,
            0,
            mask_of(tree.l2_per_pod()),
            l_t,
            n_l,
            cap,
            &mut chosen,
            out,
            budget,
        );
        scratch.leaves.put(chosen);
    }
    scratch.cands.put(candidates);
}

#[allow(clippy::too_many_arguments)]
fn collect_rec(
    scratch: &mut SearchScratch,
    candidates: &[(LeafId, u64)],
    idx: usize,
    inter: u64,
    l_t: u32,
    n_l: u32,
    cap: usize,
    chosen: &mut Vec<LeafId>,
    out: &mut Vec<PodSolution>,
    budget: &mut Budget,
) {
    if out.len() >= cap || budget.exhausted() {
        return;
    }
    if count_u32(chosen.len()) == l_t {
        // Keep solutions with distinct intersections only — duplicates add
        // no matching power at the L3 stage.
        if !out.iter().any(|s| s.inter == inter) {
            let mut leaves = scratch.leaves.take();
            leaves.extend_from_slice(chosen);
            out.push(PodSolution { leaves, inter });
        }
        return;
    }
    let needed = l_t as usize - chosen.len();
    if candidates.len() - idx < needed {
        return;
    }
    for i in idx..=candidates.len() - needed {
        if !budget.spend() {
            return;
        }
        let (leaf, mask) = candidates[i];
        let next = inter & mask;
        if next.count_ones() < n_l {
            continue;
        }
        chosen.push(leaf);
        collect_rec(
            scratch,
            candidates,
            i + 1,
            next,
            l_t,
            n_l,
            cap,
            chosen,
            out,
            budget,
        );
        chosen.pop();
        if out.len() >= cap {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn search_pods_general<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    solutions: &[(PodId, Vec<PodSolution>)],
    idx: usize,
    pos_cand: u64,
    spine_inter: &[u64],
    n_l: u32,
    l_t: u32,
    t_full: u32,
    l_rt: u32,
    n_rl: u32,
    chosen: &mut Vec<(PodId, usize)>,
    budget: &mut Budget,
) -> Option<ThreeLevelPick> {
    let tree = state.tree();
    if count_u32(chosen.len()) == t_full {
        return complete_three_level_general(
            state,
            view,
            scratch,
            solutions,
            chosen,
            pos_cand,
            spine_inter,
            n_l,
            l_t,
            l_rt,
            n_rl,
            budget,
        );
    }
    if budget.exhausted() {
        return None;
    }
    let needed = t_full as usize - chosen.len();
    if solutions.len() - idx < needed {
        return None;
    }
    let mut pod_spines = scratch.words.take();
    for i in idx..=solutions.len() - needed {
        let (pod, sltns) = &solutions[i];
        // Spine availability of this pod per position (independent of which
        // sub-solution is used — spine links hang off the pod's L2
        // switches, not its leaves).
        pod_spines.clear();
        pod_spines.extend(
            (0..tree.l2_per_pod()).map(|pos| view.spine_avail_mask(state, tree.l2_at(*pod, pos))),
        );
        for (si, sltn) in sltns.iter().enumerate() {
            if !budget.spend() {
                scratch.words.put(pod_spines);
                return None;
            }
            let next_pos = pos_cand & sltn.inter;
            if next_pos.count_ones() < n_l {
                continue;
            }
            let mut next_spine = scratch.words.take();
            next_spine.extend_from_slice(spine_inter);
            let mut good_positions = 0;
            for pos in iter_mask(next_pos) {
                next_spine[pos as usize] &= pod_spines[pos as usize];
                if next_spine[pos as usize].count_ones() >= l_t {
                    good_positions += 1;
                }
            }
            if good_positions < n_l {
                scratch.words.put(next_spine);
                continue;
            }
            chosen.push((*pod, si));
            let pick = search_pods_general(
                state,
                view,
                scratch,
                solutions,
                i + 1,
                next_pos,
                &next_spine,
                n_l,
                l_t,
                t_full,
                l_rt,
                n_rl,
                chosen,
                budget,
            );
            scratch.words.put(next_spine);
            if pick.is_some() {
                scratch.words.put(pod_spines);
                return pick;
            }
            chosen.pop();
        }
    }
    scratch.words.put(pod_spines);
    None
}

#[allow(clippy::too_many_arguments)]
fn complete_three_level_general<V: LinkView>(
    state: &SystemState,
    view: &V,
    scratch: &mut SearchScratch,
    solutions: &[(PodId, Vec<PodSolution>)],
    chosen: &[(PodId, usize)],
    pos_cand: u64,
    spine_inter: &[u64],
    n_l: u32,
    l_t: u32,
    l_rt: u32,
    n_rl: u32,
    budget: &mut Budget,
) -> Option<ThreeLevelPick> {
    let tree = state.tree();
    let m = tree.l2_per_pod() as usize;

    // Positions usable for S: in every chosen sub-solution's intersection
    // and with ≥ l_t common spines.
    let mut usable = scratch.positions.take();
    usable.extend(iter_mask(pos_cand).filter(|&pos| spine_inter[pos as usize].count_ones() >= l_t));
    if count_u32(usable.len()) < n_l {
        scratch.positions.put(usable);
        return None;
    }

    let no_remainder = l_rt == 0 && n_rl == 0;
    if no_remainder {
        let l2_set: u64 = usable.iter().take(n_l as usize).map(|&p| 1u64 << p).sum();
        scratch.positions.put(usable);
        let trees = picked_trees(scratch, solutions, chosen)?;
        let mut spine_sets = scratch.words.take();
        spine_sets.resize(m, 0);
        for pos in iter_mask(l2_set) {
            spine_sets[pos as usize] = lowest_n_bits(spine_inter[pos as usize], l_t);
        }
        return Some(ThreeLevelPick {
            n_l,
            l_t,
            l2_set,
            trees,
            spine_sets,
            rem_tree: None,
        });
    }

    // Remainder pod search (general shapes). The remainder needs a leaf
    // with n_l nodes (or n_rl when it is only a remainder leaf), so the
    // pod-max index rejects drained pods before any budget is spent.
    // The probe buffers are reused across candidate pods and recycled on
    // every exit path.
    let min_leaf_nodes = if l_rt > 0 { n_l } else { n_rl };
    let mut pod_spines = scratch.words.take();
    let mut ranked = scratch.positions.take();
    let mut rem_leaves = scratch.leaves.take();
    'rem: for pod in tree.pods() {
        if chosen.iter().any(|&(p, _)| p == pod) {
            continue;
        }
        if state.max_free_nodes_on_leaf_in_pod(pod) < min_leaf_nodes {
            continue;
        }
        if !budget.spend() {
            break 'rem;
        }
        pod_spines.clear();
        pod_spines.extend((0..tree.l2_per_pod()).map(|pos| {
            view.spine_avail_mask(state, tree.l2_at(pod, pos)) & spine_inter[pos as usize]
        }));

        // Rank usable positions by remainder-pod spine slack and keep those
        // able to carry at least l_rt uplinks. The tie-break on position
        // keeps the pick deterministic (and alloc-free — stable sorts buy
        // a merge buffer from the heap).
        ranked.clear();
        ranked.extend(
            usable
                .iter()
                .copied()
                .filter(|&pos| pod_spines[pos as usize].count_ones() >= l_rt),
        );
        if count_u32(ranked.len()) < n_l {
            continue 'rem;
        }
        ranked.sort_unstable_by_key(|&pos| {
            (
                std::cmp::Reverse(pod_spines[pos as usize].count_ones()),
                pos,
            )
        });
        ranked.truncate(n_l as usize);
        let l2_set: u64 = ranked.iter().map(|&p| 1u64 << p).sum();

        // Find l_rt full leaves (n_l nodes, uplinks covering S).
        rem_leaves.clear();
        let mut rem_leaf = None;
        let mut s_r = 0u64;
        for leaf in tree.leaves_of_pod(pod) {
            if count_u32(rem_leaves.len()) < l_rt
                && state.free_nodes_on_leaf(leaf) >= n_l
                && view.leaf_avail_mask(state, leaf) & l2_set == l2_set
            {
                rem_leaves.push(leaf);
            }
        }
        if count_u32(rem_leaves.len()) < l_rt {
            continue 'rem;
        }
        if n_rl > 0 {
            let mut found = false;
            'leaves: for leaf in tree.leaves_of_pod(pod) {
                if rem_leaves.contains(&leaf) || state.free_nodes_on_leaf(leaf) < n_rl {
                    continue;
                }
                let avail = view.leaf_avail_mask(state, leaf) & l2_set;
                if avail.count_ones() < n_rl {
                    continue;
                }
                let mut mask = 0u64;
                let mut count = 0;
                for pos in iter_mask(avail) {
                    if pod_spines[pos as usize].count_ones() > l_rt {
                        mask |= 1 << pos;
                        count += 1;
                        if count == n_rl {
                            rem_leaf = Some((leaf, n_rl, mask));
                            s_r = mask;
                            found = true;
                            break 'leaves;
                        }
                    }
                }
            }
            if !found {
                continue 'rem;
            }
        }

        // Construct spine sets.
        let mut spine_sets = scratch.words.take();
        spine_sets.resize(m, 0);
        let mut rem_sets = scratch.words.take();
        rem_sets.resize(m, 0);
        let mut feasible = true;
        for pos in iter_mask(l2_set) {
            let need = l_rt + u32::from(s_r & (1 << pos) != 0);
            let rem_part = lowest_n_bits(pod_spines[pos as usize], need);
            rem_sets[pos as usize] = rem_part;
            let fill = spine_inter[pos as usize] & !rem_part;
            if fill.count_ones() < l_t - need {
                feasible = false;
                break;
            }
            spine_sets[pos as usize] = rem_part | lowest_n_bits(fill, l_t - need);
        }
        if !feasible {
            scratch.words.put(spine_sets);
            scratch.words.put(rem_sets);
            continue 'rem;
        }

        scratch.words.put(pod_spines);
        scratch.positions.put(ranked);
        scratch.positions.put(usable);
        let trees = match picked_trees(scratch, solutions, chosen) {
            Some(trees) => trees,
            None => {
                scratch.leaves.put(rem_leaves);
                scratch.words.put(spine_sets);
                scratch.words.put(rem_sets);
                return None;
            }
        };
        return Some(ThreeLevelPick {
            n_l,
            l_t,
            l2_set,
            trees,
            spine_sets,
            rem_tree: Some(RemTree {
                pod,
                leaves: rem_leaves,
                rem_leaf,
                spine_sets: rem_sets,
            }),
        });
    }
    scratch.words.put(pod_spines);
    scratch.positions.put(ranked);
    scratch.positions.put(usable);
    scratch.leaves.put(rem_leaves);
    None
}

/// Copy the chosen sub-solutions' leaf sets into pooled [`TreeAlloc`]s.
/// `chosen` only ever holds pods drawn from `solutions`, so the lookup
/// cannot miss; propagating the `Option` keeps this panic-free anyway.
fn picked_trees(
    scratch: &mut SearchScratch,
    solutions: &[(PodId, Vec<PodSolution>)],
    chosen: &[(PodId, usize)],
) -> Option<Vec<TreeAlloc>> {
    let mut trees = scratch.trees.take();
    for &(pod, si) in chosen {
        let sltn = solutions
            .iter()
            .find(|(p, _)| *p == pod)
            .and_then(|(_, sltns)| sltns.get(si));
        let Some(sltn) = sltn else {
            for t in trees.drain(..) {
                scratch.leaves.put(t.leaves);
            }
            scratch.trees.put(trees);
            return None;
        };
        let mut leaves = scratch.leaves.take();
        leaves.extend_from_slice(&sltn.leaves);
        trees.push(TreeAlloc { pod, leaves });
    }
    Some(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_topology::ids::JobId;
    use jigsaw_topology::FatTree;

    fn fresh(radix: u32) -> SystemState {
        SystemState::new(FatTree::maximal(radix).unwrap())
    }

    #[test]
    fn two_level_on_empty_pod() {
        let state = fresh(8); // W=4, L=4, M=4
        let pick = find_two_level(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            PodId(0),
            2,
            3,
            2,
            &mut Budget::unlimited(),
        )
        .expect("allocation exists");
        assert_eq!(pick.leaves.len(), 2);
        assert_eq!(pick.l2_set.count_ones(), 3);
        let (_, s_r) = pick.rem_leaf.unwrap();
        assert_eq!(s_r.count_ones(), 2);
        assert_eq!(s_r & !pick.l2_set, 0, "S^r ⊆ S");
    }

    #[test]
    fn two_level_fails_when_nodes_busy() {
        let mut state = fresh(4); // W=2, L=2 per pod
        for n in state.tree().nodes_of_leaf(LeafId(0)).collect::<Vec<_>>() {
            state.claim_node(n, JobId(9));
        }
        // Pod 0 now has one free leaf; asking for two full leaves fails.
        assert!(find_two_level(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            PodId(0),
            2,
            2,
            0,
            &mut Budget::unlimited()
        )
        .is_none());
        // One full leaf still works.
        assert!(find_two_level(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            PodId(0),
            1,
            2,
            0,
            &mut Budget::unlimited()
        )
        .is_some());
    }

    #[test]
    fn two_level_respects_link_availability() {
        let mut state = fresh(4);
        let t = *state.tree();
        // Take one uplink of each leaf in pod 0 (positions 0 and 1 resp.)
        // so the two leaves share no common free position.
        state.claim_leaf_link(t.leaf_link(LeafId(0), 0), JobId(9));
        state.claim_leaf_link(t.leaf_link(LeafId(1), 1), JobId(9));
        // Two leaves with 1 node each need one COMMON position — none left.
        assert!(find_two_level(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            PodId(0),
            2,
            1,
            0,
            &mut Budget::unlimited()
        )
        .is_none());
        // A single leaf with 2 nodes still fits (uses its one free position
        // ... n_l = 2 needs 2 positions though, so that fails too).
        assert!(find_two_level(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            PodId(0),
            1,
            2,
            0,
            &mut Budget::unlimited()
        )
        .is_none());
        assert!(find_two_level(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            PodId(0),
            1,
            1,
            0,
            &mut Budget::unlimited()
        )
        .is_some());
    }

    #[test]
    fn three_level_full_on_empty_tree() {
        let state = fresh(4); // pods of 2 leaves × 2 nodes
                              // T=2 full trees × (l_t=2 × W=2) + remainder tree (1 full leaf + 1-node leaf).
        let pick = find_three_level_full(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            2,
            2,
            1,
            1,
            &mut Budget::unlimited(),
        )
        .expect("allocation exists");
        assert_eq!(pick.trees.len(), 2);
        assert_eq!(pick.l2_set, 0b11);
        let rem = pick.rem_tree.as_ref().unwrap();
        assert_eq!(rem.leaves.len(), 1);
        assert!(rem.rem_leaf.is_some());
        // Every spine set has l_t bits; remainder subsets are consistent.
        for pos in 0..2usize {
            assert_eq!(pick.spine_sets[pos].count_ones(), 2);
            assert_eq!(rem.spine_sets[pos] & !pick.spine_sets[pos], 0);
        }
    }

    #[test]
    fn three_level_full_respects_spine_conflicts() {
        let mut state = fresh(4);
        let t = *state.tree();
        // Burn all spine uplinks at position 0 of pods 0 and 1.
        for pod in [PodId(0), PodId(1)] {
            for slot in 0..2 {
                state.claim_spine_link(t.spine_link_at(pod, 0, slot), JobId(9));
            }
        }
        // A 2-tree allocation needing l_t = 2 spine uplinks per position can
        // only use pods 2 and 3 now.
        let pick = find_three_level_full(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            2,
            2,
            0,
            0,
            &mut Budget::unlimited(),
        )
        .expect("pods 2,3 remain");
        let pods: Vec<_> = pick.trees.iter().map(|t| t.pod).collect();
        assert_eq!(pods, vec![PodId(2), PodId(3)]);
        // Asking for three trees must fail.
        assert!(find_three_level_full(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            2,
            3,
            0,
            0,
            &mut Budget::unlimited()
        )
        .is_none());
    }

    #[test]
    fn general_three_level_with_partial_leaves() {
        let state = fresh(8); // W=4, M=4, L=4, G=4, P=8
                              // n_l = 2 (< W): least-constrained shape Jigsaw would not use.
        let pick = find_three_level_general(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            2,
            3,
            2,
            0,
            0,
            &mut Budget::unlimited(),
            8,
        )
        .expect("allocation exists");
        assert_eq!(pick.n_l, 2);
        assert_eq!(pick.l2_set.count_ones(), 2);
        assert_eq!(pick.trees.len(), 2);
        for tree_alloc in &pick.trees {
            assert_eq!(tree_alloc.leaves.len(), 3);
        }
    }

    #[test]
    fn budget_exhaustion_aborts() {
        let state = fresh(8);
        let mut budget = Budget::new(1);
        let _ = find_three_level_general(
            &state,
            &Exclusive,
            &mut SearchScratch::default(),
            2,
            3,
            2,
            1,
            1,
            &mut budget,
            8,
        );
        assert!(budget.exhausted() || budget.spent() <= 2);
    }

    #[test]
    fn shared_view_sees_spare_bandwidth() {
        let mut state = fresh(4);
        let t = *state.tree();
        let link = t.leaf_link(LeafId(0), 0);
        assert!(state.try_reserve_leaf_link_bw(link, 35));
        let heavy = Shared { bw_tenths: 10 };
        let light = Shared { bw_tenths: 5 };
        assert_eq!(heavy.leaf_avail_mask(&state, LeafId(0)), 0b10);
        assert_eq!(light.leaf_avail_mask(&state, LeafId(0)), 0b11);
        // Exclusive view treats the shared link as unavailable.
        assert_eq!(Exclusive.leaf_avail_mask(&state, LeafId(0)), 0b10);
    }
}
