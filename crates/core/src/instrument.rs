//! Allocator instrumentation: [`ObservedAllocator`] wraps any scheme and
//! feeds per-scheme metrics into a [`Registry`].
//!
//! The wrapper records, labeled by scheme name:
//!
//! * `jigsaw_alloc_attempts_total` / `jigsaw_alloc_grants_total` /
//!   `jigsaw_alloc_releases_total` — allocation outcome counters;
//! * `jigsaw_alloc_rejects_total{reason=…}` — one counter per typed
//!   [`Reject`] kind;
//! * `jigsaw_alloc_reconfigures_total` — decisions that produced a
//!   [`MigrationPlan`](crate::defrag::MigrationPlan) instead of a grant
//!   or a reject;
//! * `jigsaw_alloc_latency_ns` / `jigsaw_release_latency_ns` — log2
//!   latency histograms over the decide/release calls;
//! * `jigsaw_alloc_search_steps` — the scheme's machine-independent
//!   backtracking effort (Table 3's second metric);
//! * `jigsaw_alloc_nodes_in_use` — gauge of currently granted nodes.
//!
//! [`Allocator::clone_box`] and [`Allocator::fresh_box`] return clones with
//! *disabled* observation: the simulator clones allocators to replay
//! hypothetical schedules (EASY reservations, fits-empty probes), and those
//! scratch replays must neither pollute the latency histograms nor
//! unbalance the grant/release counters.

use crate::alloc::Allocation;
use crate::allocator::{Allocator, Decision};
use crate::job::JobRequest;
use crate::reject::RejectReason;
use jigsaw_obs::{Counter, EventKind, Gauge, Histogram, Registry};
use jigsaw_topology::SystemState;

/// The per-scheme metric handles [`ObservedAllocator`] records into.
/// Usable standalone when an embedder wants the metrics without the
/// trait-object wrapper.
#[derive(Debug, Clone)]
pub struct AllocatorObs {
    registry: Registry,
    attempts: Counter,
    grants: Counter,
    releases: Counter,
    rejects: Vec<Counter>,
    reconfigures: Counter,
    alloc_ns: Histogram,
    release_ns: Histogram,
    search_steps: Histogram,
    nodes_in_use: Gauge,
}

impl AllocatorObs {
    /// Register the allocator metric family for `scheme` in `registry`.
    /// Every [`Reject`] kind's counter is registered eagerly so the
    /// exposition shows zeroes rather than omitting untripped reasons.
    pub fn new(registry: &Registry, scheme: &'static str) -> AllocatorObs {
        let labels = [("scheme", scheme)];
        let rejects = RejectReason::ALL_KINDS
            .iter()
            .map(|reason| {
                registry.counter_with(
                    "jigsaw_alloc_rejects_total",
                    "Rejected allocation attempts by typed reason.",
                    &[("scheme", scheme), ("reason", reason)],
                )
            })
            .collect();
        AllocatorObs {
            registry: registry.clone(),
            attempts: registry.counter_with(
                "jigsaw_alloc_attempts_total",
                "Allocation attempts.",
                &labels,
            ),
            grants: registry.counter_with(
                "jigsaw_alloc_grants_total",
                "Granted allocations.",
                &labels,
            ),
            releases: registry.counter_with(
                "jigsaw_alloc_releases_total",
                "Released allocations.",
                &labels,
            ),
            rejects,
            reconfigures: registry.counter_with(
                "jigsaw_alloc_reconfigures_total",
                "Decisions that produced a migration plan (Reconfigure).",
                &labels,
            ),
            alloc_ns: registry.histogram_with(
                "jigsaw_alloc_latency_ns",
                "Latency of Allocator::decide calls (ns).",
                &labels,
            ),
            release_ns: registry.histogram_with(
                "jigsaw_release_latency_ns",
                "Latency of Allocator::release calls (ns).",
                &labels,
            ),
            search_steps: registry.histogram_with(
                "jigsaw_alloc_search_steps",
                "Backtracking steps per allocate call (machine-independent effort).",
                &labels,
            ),
            nodes_in_use: registry.gauge_with(
                "jigsaw_alloc_nodes_in_use",
                "Nodes currently granted to running jobs.",
                &labels,
            ),
        }
    }

    /// Inert handles: every record is a no-op.
    pub fn disabled() -> AllocatorObs {
        AllocatorObs {
            registry: Registry::disabled(),
            attempts: Counter::disabled(),
            grants: Counter::disabled(),
            releases: Counter::disabled(),
            rejects: Vec::new(),
            reconfigures: Counter::disabled(),
            alloc_ns: Histogram::disabled(),
            release_ns: Histogram::disabled(),
            search_steps: Histogram::disabled(),
            nodes_in_use: Gauge::disabled(),
        }
    }

    /// Record one allocation decision (latency is recorded separately via
    /// the histogram handles).
    pub fn record_decision(&self, req: &JobRequest, decision: &Decision) {
        match decision {
            Decision::Admit(alloc) => {
                self.grants.inc();
                self.nodes_in_use.add(alloc.nodes.len() as i64);
                self.registry
                    .event(EventKind::JobStart, Some(req.id.0), || {
                        format!("size={} granted={}", req.size, alloc.nodes.len())
                    });
            }
            Decision::Reject(reject) => {
                if let Some(c) = self.rejects.get(reject.kind_index()) {
                    c.inc();
                }
                self.registry
                    .event(EventKind::Rejection, Some(req.id.0), || {
                        format!("size={} reason={reject}", req.size)
                    });
            }
            Decision::Reconfigure(plan) => {
                self.reconfigures.inc();
                self.registry
                    .event(EventKind::Reconfigure, Some(req.id.0), || {
                        format!(
                            "size={} moves={} nodes_moved={}",
                            req.size,
                            plan.moves.len(),
                            plan.nodes_moved()
                        )
                    });
            }
        }
    }

    /// Counter of granted allocations.
    pub fn grants(&self) -> &Counter {
        &self.grants
    }

    /// Counter of released allocations.
    pub fn releases(&self) -> &Counter {
        &self.releases
    }

    /// Gauge of nodes currently granted.
    pub fn nodes_in_use(&self) -> &Gauge {
        &self.nodes_in_use
    }

    /// Counter of `Reconfigure` decisions.
    pub fn reconfigures(&self) -> &Counter {
        &self.reconfigures
    }
}

/// An [`Allocator`] wrapper recording per-scheme observability. See the
/// module docs for the metric catalog.
pub struct ObservedAllocator {
    inner: Box<dyn Allocator>,
    obs: AllocatorObs,
}

impl ObservedAllocator {
    /// Wrap `inner`, registering its metrics (labeled by
    /// [`Allocator::name`]) in `registry`. With a disabled registry the
    /// wrapper's overhead is a handful of null checks — bounded by the
    /// `obs_overhead` bench in `jigsaw-bench`.
    pub fn new(inner: Box<dyn Allocator>, registry: &Registry) -> ObservedAllocator {
        let obs = AllocatorObs::new(registry, inner.name());
        ObservedAllocator { inner, obs }
    }

    /// The metric handles this wrapper records into.
    pub fn obs(&self) -> &AllocatorObs {
        &self.obs
    }
}

impl Allocator for ObservedAllocator {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        self.obs.attempts.inc();
        let t0 = self.obs.alloc_ns.start();
        let decision = self.inner.decide(state, req);
        self.obs.alloc_ns.observe_since(t0);
        if self.obs.search_steps.is_enabled() {
            self.obs
                .search_steps
                .observe(self.inner.last_search_steps());
        }
        self.obs.record_decision(req, &decision);
        decision
    }

    fn release(&mut self, state: &mut SystemState, alloc: &Allocation) {
        let t0 = self.obs.release_ns.start();
        self.inner.release(state, alloc);
        self.obs.release_ns.observe_since(t0);
        self.obs.releases.inc();
        self.obs.nodes_in_use.sub(alloc.nodes.len() as i64);
        self.obs
            .registry
            .event(EventKind::JobComplete, Some(alloc.job.0), || {
                format!("released={}", alloc.nodes.len())
            });
    }

    fn adopt(&mut self, state: &mut SystemState, alloc: &Allocation) {
        self.inner.adopt(state, alloc);
        // Adopted allocations (recovery replay) occupy nodes like granted
        // ones; count them in the gauge but not as fresh grants.
        self.obs.nodes_in_use.add(alloc.nodes.len() as i64);
    }

    fn recycle(&mut self, alloc: Allocation) {
        self.inner.recycle(alloc);
    }

    fn last_search_steps(&self) -> u64 {
        self.inner.last_search_steps()
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        // Scratch clones (reservation replay) must not pollute metrics.
        Box::new(ObservedAllocator {
            inner: self.inner.clone_box(),
            obs: AllocatorObs::disabled(),
        })
    }

    fn fresh_box(&self) -> Box<dyn Allocator> {
        Box::new(ObservedAllocator {
            inner: self.inner.fresh_box(),
            obs: AllocatorObs::disabled(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Scheme;
    use jigsaw_topology::ids::JobId;
    use jigsaw_topology::{FatTree, SystemState};

    #[test]
    fn records_grants_rejects_and_balance() {
        let tree = FatTree::maximal(4).unwrap();
        let mut state = SystemState::new(tree);
        let reg = Registry::new();
        let mut alloc = ObservedAllocator::new(Scheme::Jigsaw.make(&tree), &reg);

        let a = alloc
            .try_admit(&mut state, &JobRequest::new(JobId(1), 5))
            .unwrap();
        assert!(alloc
            .try_admit(&mut state, &JobRequest::new(JobId(2), 99))
            .is_err());
        assert_eq!(alloc.obs().grants().get(), 1);
        assert_eq!(alloc.obs().nodes_in_use().get(), 5);
        alloc.release(&mut state, &a);
        assert_eq!(alloc.obs().releases().get(), 1);
        assert_eq!(alloc.obs().nodes_in_use().get(), 0);

        let text = reg.render_prometheus();
        assert!(text.contains("jigsaw_alloc_grants_total{scheme=\"Jigsaw\"} 1"));
        assert!(
            text.contains("jigsaw_alloc_rejects_total{scheme=\"Jigsaw\",reason=\"no_nodes\"} 1")
        );
        assert!(text.contains("jigsaw_alloc_latency_ns_count{scheme=\"Jigsaw\"} 2"));
        assert!(text.contains("jigsaw_alloc_search_steps_count{scheme=\"Jigsaw\"} 2"));
        // Events captured for both outcomes plus the release.
        let kinds: Vec<_> = reg.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::JobStart));
        assert!(kinds.contains(&EventKind::Rejection));
        assert!(kinds.contains(&EventKind::JobComplete));
    }

    #[test]
    fn scratch_clones_do_not_pollute() {
        let tree = FatTree::maximal(4).unwrap();
        let mut state = SystemState::new(tree);
        let reg = Registry::new();
        let alloc = ObservedAllocator::new(Scheme::Jigsaw.make(&tree), &reg);

        let mut scratch = alloc.clone_box();
        let _ = scratch.try_admit(&mut state, &JobRequest::new(JobId(1), 5));
        let text = reg.render_prometheus();
        assert!(text.contains("jigsaw_alloc_attempts_total{scheme=\"Jigsaw\"} 0"));
        assert!(text.contains("jigsaw_alloc_grants_total{scheme=\"Jigsaw\"} 0"));
    }

    #[test]
    fn disabled_registry_costs_nothing_and_still_allocates() {
        let tree = FatTree::maximal(4).unwrap();
        let mut state = SystemState::new(tree);
        let reg = Registry::disabled();
        let mut alloc = ObservedAllocator::new(Scheme::Ta.make(&tree), &reg);
        let a = alloc
            .try_admit(&mut state, &JobRequest::new(JobId(1), 3))
            .unwrap();
        assert_eq!(a.nodes.len(), 3);
        assert_eq!(alloc.obs().grants().get(), 0);
        assert_eq!(reg.render_prometheus(), "");
    }
}
