//! Whole-system auditing: cross-check a set of live allocations against
//! the allocation state and the formal conditions.
//!
//! A resource manager embedding Jigsaw wants an independent invariant
//! check it can run periodically (or after crashes/reconfigurations):
//! every granted resource is recorded, nothing is double-booked, nothing
//! leaked, and every structured partition still satisfies §3.2.2. This
//! module provides that check; the simulator's tests and the integration
//! suite run it continuously.

use crate::alloc::{Allocation, Shape};
use crate::conditions::check_shape;
use jigsaw_topology::SystemState;
use std::collections::HashMap;
use std::fmt;

/// An audit finding. Any finding means the system is corrupt.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// Two allocations claim the same node.
    NodeDoubleBooked {
        /// The contested node id.
        node: u32,
    },
    /// Two allocations claim the same leaf↔L2 link exclusively.
    LeafLinkDoubleBooked {
        /// The contested link id.
        link: u32,
    },
    /// Two allocations claim the same L2↔spine link exclusively.
    SpineLinkDoubleBooked {
        /// The contested link id.
        link: u32,
    },
    /// The state says a node is owned by a job, but no live allocation
    /// accounts for it (a leak), or vice versa.
    OwnershipMismatch {
        /// The node id in question.
        node: u32,
    },
    /// A structured allocation violates the formal conditions.
    ConditionViolation {
        /// The offending job.
        job: u32,
        /// Human-readable violation.
        reason: String,
    },
    /// Fractional bandwidth on some link exceeds the configured cap.
    BandwidthOverCap {
        /// `true` for a leaf↔L2 link, `false` for L2↔spine.
        leaf_layer: bool,
        /// The link id.
        link: u32,
    },
    /// An allocation's node count disagrees with its shape.
    ShapeNodeMismatch {
        /// The offending job.
        job: u32,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::NodeDoubleBooked { node } => write!(f, "node {node} double-booked"),
            AuditError::LeafLinkDoubleBooked { link } => {
                write!(f, "leaf link {link} double-booked")
            }
            AuditError::SpineLinkDoubleBooked { link } => {
                write!(f, "spine link {link} double-booked")
            }
            AuditError::OwnershipMismatch { node } => {
                write!(
                    f,
                    "node {node} ownership disagrees with the live allocation set"
                )
            }
            AuditError::ConditionViolation { job, reason } => {
                write!(f, "job {job} violates the formal conditions: {reason}")
            }
            AuditError::BandwidthOverCap { leaf_layer, link } => write!(
                f,
                "{} link {link} carries bandwidth above the cap",
                if *leaf_layer { "leaf" } else { "spine" }
            ),
            AuditError::ShapeNodeMismatch { job } => {
                write!(f, "job {job}: shape and node list disagree")
            }
        }
    }
}

/// Audit `state` against the complete set of live allocations. Returns
/// every finding (empty = healthy).
pub fn audit_system(state: &SystemState, live: &[Allocation]) -> Vec<AuditError> {
    let tree = state.tree();
    let mut errors = Vec::new();

    // --- Double-booking across allocations. --------------------------------
    let mut node_claims: HashMap<u32, u32> = HashMap::new();
    let mut leaf_link_claims: HashMap<u32, u32> = HashMap::new();
    let mut spine_link_claims: HashMap<u32, u32> = HashMap::new();
    for alloc in live {
        for n in &alloc.nodes {
            if node_claims.insert(n.0, alloc.job.0).is_some() {
                errors.push(AuditError::NodeDoubleBooked { node: n.0 });
            }
        }
        if alloc.bw_tenths == 0 {
            for l in &alloc.leaf_links {
                if leaf_link_claims.insert(l.0, alloc.job.0).is_some() {
                    errors.push(AuditError::LeafLinkDoubleBooked { link: l.0 });
                }
            }
            for l in &alloc.spine_links {
                if spine_link_claims.insert(l.0, alloc.job.0).is_some() {
                    errors.push(AuditError::SpineLinkDoubleBooked { link: l.0 });
                }
            }
        }
    }

    // --- Ownership agreement with the state. --------------------------------
    for node in tree.nodes() {
        let state_owner = state.node_owner(node).map(|j| j.0);
        let live_owner = node_claims.get(&node.0).copied();
        if state_owner != live_owner {
            errors.push(AuditError::OwnershipMismatch { node: node.0 });
        }
    }

    // --- Per-allocation structure. -------------------------------------------
    for alloc in live {
        match &alloc.shape {
            Shape::Unstructured => {}
            shape => {
                if let Err(v) = check_shape(tree, shape) {
                    errors.push(AuditError::ConditionViolation {
                        job: alloc.job.0,
                        reason: v.to_string(),
                    });
                }
                if shape.node_count() as usize != alloc.nodes.len() {
                    errors.push(AuditError::ShapeNodeMismatch { job: alloc.job.0 });
                }
            }
        }
    }

    // --- Bandwidth caps. --------------------------------------------------------
    let cap = state.bandwidth().cap_tenths;
    for leaf in tree.leaves() {
        for pos in 0..tree.l2_per_pod() {
            let link = tree.leaf_link(leaf, pos);
            if state.leaf_link_bw_used(link) > cap {
                errors.push(AuditError::BandwidthOverCap {
                    leaf_layer: true,
                    link: link.0,
                });
            }
        }
    }
    for pod in tree.pods() {
        for pos in 0..tree.l2_per_pod() {
            for slot in 0..tree.spines_per_group() {
                let link = tree.spine_link_at(pod, pos, slot);
                if state.spine_link_bw_used(link) > cap {
                    errors.push(AuditError::BandwidthOverCap {
                        leaf_layer: false,
                        link: link.0,
                    });
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator;
    use crate::{JigsawAllocator, JobRequest, Scheme};
    use jigsaw_topology::ids::JobId;
    use jigsaw_topology::FatTree;

    #[test]
    fn healthy_system_audits_clean() {
        let tree = FatTree::maximal(8).unwrap();
        let mut state = SystemState::new(tree);
        let mut live = Vec::new();
        for kind in [Scheme::Jigsaw, Scheme::Jigsaw] {
            let mut alloc = kind.make(&tree);
            for (i, size) in [
                (live.len() as u32 * 10, 13u32),
                (live.len() as u32 * 10 + 1, 7),
            ] {
                if let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(JobId(i), size)) {
                    live.push(a);
                }
            }
        }
        assert!(live.len() >= 3);
        assert_eq!(audit_system(&state, &live), Vec::new());
    }

    #[test]
    fn leak_detected() {
        let tree = FatTree::maximal(4).unwrap();
        let mut state = SystemState::new(tree);
        let mut jig = JigsawAllocator::new(&tree);
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 4))
            .unwrap();
        // Forget the allocation: state says owned, live set says nothing.
        let errors = audit_system(&state, &[]);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::OwnershipMismatch { .. })));
        // And the reverse: live set claims nodes the state thinks are free.
        jig.release(&mut state, &a);
        let errors = audit_system(&state, &[a]);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::OwnershipMismatch { .. })));
    }

    #[test]
    fn double_booking_detected() {
        let tree = FatTree::maximal(4).unwrap();
        let mut state = SystemState::new(tree);
        let mut jig = JigsawAllocator::new(&tree);
        let a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 4))
            .unwrap();
        let mut b = a.clone();
        b.job = JobId(2);
        let errors = audit_system(&state, &[a, b]);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::NodeDoubleBooked { .. })));
    }

    #[test]
    fn tampered_shape_detected() {
        let tree = FatTree::maximal(8).unwrap();
        let mut state = SystemState::new(tree);
        let mut jig = JigsawAllocator::new(&tree);
        let mut a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 11))
            .unwrap();
        if let Shape::TwoLevel { l2_set, .. } = &mut a.shape {
            *l2_set = 0b1; // unbalanced uplinks
        }
        let errors = audit_system(&state, &[a]);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::ConditionViolation { .. })));
    }

    #[test]
    fn shape_node_mismatch_detected() {
        let tree = FatTree::maximal(4).unwrap();
        let mut state = SystemState::new(tree);
        let mut jig = JigsawAllocator::new(&tree);
        let mut a = jig
            .try_admit(&mut state, &JobRequest::new(JobId(1), 2))
            .unwrap();
        // Claim one more node behind the audit's back — both a mismatch and
        // an ownership error.
        let extra = state.first_free_node().unwrap();
        state.claim_node(extra, JobId(1));
        a.nodes.push(extra);
        let errors = audit_system(&state, &[a]);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::ShapeNodeMismatch { .. })));
    }
}
