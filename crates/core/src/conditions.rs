//! Executable form of the paper's formal allocation conditions (§3.2.2).
//!
//! [`check_shape`] validates a structured [`Shape`] against a fat-tree and
//! reports the first violated condition. The conditions are exactly those
//! proved necessary and sufficient for an allocation to be rearrangeable
//! non-blocking (Appendix A of the paper):
//!
//! 1. nodes evenly distributed across `T` trees (+ optional smaller
//!    remainder tree),
//! 2. within each tree, evenly across `L_T` leaves (+ optional smaller
//!    remainder leaf),
//! 3. the remainder leaf lives in the remainder tree,
//! 4. leaves of a tree connect to a common L2 set `S`; the remainder leaf
//!    to `S^r ⊂ S`,
//! 5. the L2 positions in `S` are identical across trees,
//! 6. L2 switches at position `i` connect to a common spine set `S*_i`
//!    (remainder tree: a subset), with uplinks balancing downlinks.
//!
//! The balance requirement (uplinks == downlinks at every leaf and L2
//! switch, Fig. 1-left) is checked structurally: `|S| == n_L`,
//! `|S^r| == n_L^r`, `|S*_i| == L_T`, `|S*^r_i| == L_T^r + [i ∈ S^r]`.

use crate::alloc::Shape;
use jigsaw_topology::bitset::iter_mask;
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::state::mask_of;
use jigsaw_topology::FatTree;
use std::collections::HashSet;
use std::fmt;

/// Why a shape fails the formal conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConditionViolation {
    /// The shape carries no network structure (Baseline/TA allocations).
    Unstructured,
    /// An id refers outside the tree or into the wrong pod.
    MalformedTopologyReference(&'static str),
    /// A node, leaf or pod appears twice.
    DuplicateResource(&'static str),
    /// Condition 1/2 violated: a "full" tree or leaf count is out of range.
    BadCount(&'static str),
    /// Condition 2: the remainder leaf must hold fewer nodes than full
    /// leaves (`n_L^r < n_L`).
    RemainderLeafTooLarge,
    /// Condition 1: the remainder tree must hold fewer nodes than full
    /// trees (`n_T^r < n_T`).
    RemainderTreeTooLarge,
    /// Balance: a full leaf must have exactly `n_L` uplinks (`|S| = n_L`).
    UnbalancedLeafUplinks,
    /// Condition 4: the remainder leaf's `S^r` must be a subset of `S` with
    /// `|S^r| = n_L^r`.
    RemainderLeafLinks,
    /// Condition 6: L2 switch at position `i` must have exactly `L_T`
    /// spine uplinks (`|S*_i| = L_T`), at in-range slots, and only for
    /// positions in `S`.
    UnbalancedSpineUplinks,
    /// Condition 6: remainder-tree spine sets must be subsets of the full
    /// trees' sets with size `L_T^r + [i ∈ S^r]`.
    RemainderSpineLinks,
}

impl fmt::Display for ConditionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionViolation::Unstructured => write!(f, "shape carries no network structure"),
            ConditionViolation::MalformedTopologyReference(what) => {
                write!(f, "malformed topology reference: {what}")
            }
            ConditionViolation::DuplicateResource(what) => write!(f, "duplicate {what}"),
            ConditionViolation::BadCount(what) => write!(f, "bad count: {what}"),
            ConditionViolation::RemainderLeafTooLarge => {
                write!(
                    f,
                    "condition 2: remainder leaf must hold fewer nodes than full leaves"
                )
            }
            ConditionViolation::RemainderTreeTooLarge => {
                write!(
                    f,
                    "condition 1: remainder tree must hold fewer nodes than full trees"
                )
            }
            ConditionViolation::UnbalancedLeafUplinks => {
                write!(
                    f,
                    "balance: a full leaf needs exactly n_L uplinks (|S| = n_L)"
                )
            }
            ConditionViolation::RemainderLeafLinks => {
                write!(
                    f,
                    "condition 4: remainder leaf links must be S^r ⊂ S with |S^r| = n_L^r"
                )
            }
            ConditionViolation::UnbalancedSpineUplinks => {
                write!(
                    f,
                    "condition 6: each used L2 switch needs exactly L_T spine uplinks"
                )
            }
            ConditionViolation::RemainderSpineLinks => {
                write!(f, "condition 6: remainder tree spine sets must be subsets of size L_T^r (+1 on S^r)")
            }
        }
    }
}

impl std::error::Error for ConditionViolation {}

/// Check a shape against the formal conditions of §3.2.2. `Ok(())` means
/// the shape describes a legal, full-bandwidth (rearrangeable non-blocking)
/// partition of `tree`.
pub fn check_shape(tree: &FatTree, shape: &Shape) -> Result<(), ConditionViolation> {
    match shape {
        Shape::Unstructured => Err(ConditionViolation::Unstructured),
        Shape::SingleLeaf { leaf, n } => {
            if leaf.0 >= tree.num_leaves() {
                return Err(ConditionViolation::MalformedTopologyReference("leaf id"));
            }
            if *n == 0 || *n > tree.nodes_per_leaf() {
                return Err(ConditionViolation::BadCount("single-leaf node count"));
            }
            Ok(())
        }
        Shape::TwoLevel {
            pod,
            n_l,
            leaves,
            l2_set,
            rem_leaf,
        } => check_two_level(tree, *pod, *n_l, leaves, *l2_set, rem_leaf.as_ref()),
        Shape::ThreeLevel {
            n_l,
            l_t,
            l2_set,
            trees,
            spine_sets,
            rem_tree,
        } => check_three_level(
            tree,
            *n_l,
            *l_t,
            *l2_set,
            trees,
            spine_sets,
            rem_tree.as_ref(),
        ),
    }
}

fn check_two_level(
    tree: &FatTree,
    pod: jigsaw_topology::ids::PodId,
    n_l: u32,
    leaves: &[jigsaw_topology::ids::LeafId],
    l2_set: u64,
    rem_leaf: Option<&(jigsaw_topology::ids::LeafId, u32, u64)>,
) -> Result<(), ConditionViolation> {
    if pod.0 >= tree.num_pods() {
        return Err(ConditionViolation::MalformedTopologyReference("pod id"));
    }
    if leaves.is_empty() {
        return Err(ConditionViolation::BadCount(
            "two-level allocation with no full leaves",
        ));
    }
    if n_l == 0 || n_l > tree.nodes_per_leaf() {
        return Err(ConditionViolation::BadCount("nodes per leaf"));
    }
    let mut seen = HashSet::with_capacity(leaves.len() + 1);
    for &leaf in leaves {
        if leaf.0 >= tree.num_leaves() || tree.pod_of_leaf(leaf) != pod {
            return Err(ConditionViolation::MalformedTopologyReference(
                "leaf not in pod",
            ));
        }
        if !seen.insert(leaf) {
            return Err(ConditionViolation::DuplicateResource("leaf"));
        }
    }
    // Balance + condition 4: every full leaf uses the same S, |S| = n_L.
    if l2_set & !mask_of(tree.l2_per_pod()) != 0 {
        return Err(ConditionViolation::MalformedTopologyReference(
            "L2 position",
        ));
    }
    if l2_set.count_ones() != n_l {
        return Err(ConditionViolation::UnbalancedLeafUplinks);
    }
    if let Some(&(leaf, n_r, s_r)) = rem_leaf {
        if leaf.0 >= tree.num_leaves() || tree.pod_of_leaf(leaf) != pod {
            return Err(ConditionViolation::MalformedTopologyReference(
                "remainder leaf not in pod",
            ));
        }
        if !seen.insert(leaf) {
            return Err(ConditionViolation::DuplicateResource("remainder leaf"));
        }
        if n_r == 0 || n_r >= n_l {
            return Err(ConditionViolation::RemainderLeafTooLarge);
        }
        // S^r ⊂ S with |S^r| = n_L^r.
        if s_r & !l2_set != 0 || s_r.count_ones() != n_r {
            return Err(ConditionViolation::RemainderLeafLinks);
        }
    }
    Ok(())
}

fn check_three_level(
    tree: &FatTree,
    n_l: u32,
    l_t: u32,
    l2_set: u64,
    trees: &[crate::alloc::TreeAlloc],
    spine_sets: &[u64],
    rem_tree: Option<&crate::alloc::RemTree>,
) -> Result<(), ConditionViolation> {
    if trees.is_empty() {
        return Err(ConditionViolation::BadCount(
            "three-level allocation with no full trees",
        ));
    }
    if n_l == 0 || n_l > tree.nodes_per_leaf() {
        return Err(ConditionViolation::BadCount("nodes per leaf"));
    }
    if l_t == 0 || l_t > tree.leaves_per_pod() {
        return Err(ConditionViolation::BadCount("leaves per tree"));
    }
    if l2_set & !mask_of(tree.l2_per_pod()) != 0 {
        return Err(ConditionViolation::MalformedTopologyReference(
            "L2 position",
        ));
    }
    if l2_set.count_ones() != n_l {
        return Err(ConditionViolation::UnbalancedLeafUplinks);
    }

    let mut pods_seen = HashSet::new();
    let mut leaves_seen = HashSet::new();
    for t in trees {
        if t.pod.0 >= tree.num_pods() {
            return Err(ConditionViolation::MalformedTopologyReference("pod id"));
        }
        if !pods_seen.insert(t.pod) {
            return Err(ConditionViolation::DuplicateResource("pod"));
        }
        // Condition 1/2: every full tree has exactly L_T leaves of n_L nodes.
        if count_u32(t.leaves.len()) != l_t {
            return Err(ConditionViolation::BadCount(
                "full tree with wrong leaf count",
            ));
        }
        for &leaf in &t.leaves {
            if leaf.0 >= tree.num_leaves() || tree.pod_of_leaf(leaf) != t.pod {
                return Err(ConditionViolation::MalformedTopologyReference(
                    "leaf not in its pod",
                ));
            }
            if !leaves_seen.insert(leaf) {
                return Err(ConditionViolation::DuplicateResource("leaf"));
            }
        }
    }

    // Condition 6 on full trees: spine sets indexed by position, |S*_i| = L_T
    // exactly for i ∈ S, empty otherwise.
    if spine_sets.len() != tree.l2_per_pod() as usize {
        return Err(ConditionViolation::MalformedTopologyReference(
            "spine set vector length",
        ));
    }
    for (pos, &set) in spine_sets.iter().enumerate() {
        let in_s = l2_set & (1 << pos) != 0;
        if set & !mask_of(tree.spines_per_group()) != 0 {
            return Err(ConditionViolation::MalformedTopologyReference("spine slot"));
        }
        if in_s {
            if set.count_ones() != l_t {
                return Err(ConditionViolation::UnbalancedSpineUplinks);
            }
        } else if set != 0 {
            return Err(ConditionViolation::UnbalancedSpineUplinks);
        }
    }

    if let Some(rem) = rem_tree {
        if rem.pod.0 >= tree.num_pods() {
            return Err(ConditionViolation::MalformedTopologyReference(
                "remainder pod id",
            ));
        }
        if !pods_seen.insert(rem.pod) {
            return Err(ConditionViolation::DuplicateResource("remainder pod"));
        }
        let l_rt = count_u32(rem.leaves.len());
        let n_rl = rem.rem_leaf.map_or(0, |(_, n, _)| n);
        // Condition 1: n_T^r < n_T.
        if l_rt * n_l + n_rl >= l_t * n_l {
            return Err(ConditionViolation::RemainderTreeTooLarge);
        }
        if l_rt == 0 && rem.rem_leaf.is_none() {
            return Err(ConditionViolation::BadCount("empty remainder tree"));
        }
        for &leaf in &rem.leaves {
            if leaf.0 >= tree.num_leaves() || tree.pod_of_leaf(leaf) != rem.pod {
                return Err(ConditionViolation::MalformedTopologyReference(
                    "remainder-tree leaf not in its pod",
                ));
            }
            if !leaves_seen.insert(leaf) {
                return Err(ConditionViolation::DuplicateResource("leaf"));
            }
        }
        let mut s_r_mask = 0u64;
        if let Some((leaf, n_r, s_r)) = rem.rem_leaf {
            if leaf.0 >= tree.num_leaves() || tree.pod_of_leaf(leaf) != rem.pod {
                return Err(ConditionViolation::MalformedTopologyReference(
                    "remainder leaf not in remainder pod",
                ));
            }
            if !leaves_seen.insert(leaf) {
                return Err(ConditionViolation::DuplicateResource("remainder leaf"));
            }
            // Condition 2: n_L^r < n_L; condition 4: S^r ⊂ S.
            if n_r == 0 || n_r >= n_l {
                return Err(ConditionViolation::RemainderLeafTooLarge);
            }
            if s_r & !l2_set != 0 || s_r.count_ones() != n_r {
                return Err(ConditionViolation::RemainderLeafLinks);
            }
            s_r_mask = s_r;
        }
        // Condition 6 on the remainder tree: S*^r_i ⊆ S*_i with
        // |S*^r_i| = L_T^r + [i ∈ S^r].
        if rem.spine_sets.len() != tree.l2_per_pod() as usize {
            return Err(ConditionViolation::MalformedTopologyReference(
                "remainder spine set vector length",
            ));
        }
        #[allow(clippy::needless_range_loop)] // parallel-indexing two vectors
        for pos in 0..tree.l2_per_pod() as usize {
            let in_s = l2_set & (1 << pos) != 0;
            let set = rem.spine_sets[pos];
            if !in_s {
                if set != 0 {
                    return Err(ConditionViolation::RemainderSpineLinks);
                }
                continue;
            }
            let need = l_rt + u32::from(s_r_mask & (1 << pos) != 0);
            if set & !spine_sets[pos] != 0 || set.count_ones() != need {
                return Err(ConditionViolation::RemainderSpineLinks);
            }
        }
    }

    // Sanity: the implied per-position spine usage never exceeds the group.
    for pos in iter_mask(l2_set) {
        debug_assert!(spine_sets[pos as usize].count_ones() <= tree.spines_per_group());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{RemTree, TreeAlloc};
    use jigsaw_topology::ids::{LeafId, PodId};

    fn tree() -> FatTree {
        FatTree::maximal(4).unwrap() // W=2, L=2, M=2, G=2, P=4
    }

    #[test]
    fn single_leaf_legal() {
        let t = tree();
        assert_eq!(
            check_shape(
                &t,
                &Shape::SingleLeaf {
                    leaf: LeafId(1),
                    n: 2
                }
            ),
            Ok(())
        );
        assert!(check_shape(
            &t,
            &Shape::SingleLeaf {
                leaf: LeafId(99),
                n: 1
            }
        )
        .is_err());
        assert!(check_shape(
            &t,
            &Shape::SingleLeaf {
                leaf: LeafId(0),
                n: 3
            }
        )
        .is_err());
    }

    #[test]
    fn unstructured_is_flagged() {
        assert_eq!(
            check_shape(&tree(), &Shape::Unstructured),
            Err(ConditionViolation::Unstructured)
        );
    }

    fn legal_two_level() -> Shape {
        Shape::TwoLevel {
            pod: PodId(0),
            n_l: 2,
            leaves: vec![LeafId(0)],
            l2_set: 0b11,
            rem_leaf: Some((LeafId(1), 1, 0b01)),
        }
    }

    #[test]
    fn two_level_legal_and_violations() {
        let t = tree();
        assert_eq!(check_shape(&t, &legal_two_level()), Ok(()));

        // |S| != n_L (Fig. 1-left: tapering).
        let mut s = legal_two_level();
        if let Shape::TwoLevel { l2_set, .. } = &mut s {
            *l2_set = 0b01;
        }
        assert_eq!(
            check_shape(&t, &s),
            Err(ConditionViolation::UnbalancedLeafUplinks)
        );

        // Remainder as large as a full leaf (condition 2).
        let s = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 1,
            leaves: vec![LeafId(0)],
            l2_set: 0b01,
            rem_leaf: Some((LeafId(1), 1, 0b01)),
        };
        assert_eq!(
            check_shape(&t, &s),
            Err(ConditionViolation::RemainderLeafTooLarge)
        );

        // S^r not a subset of S (Fig. 1-right: disconnected links).
        let mut s = legal_two_level();
        if let Shape::TwoLevel {
            n_l,
            l2_set,
            rem_leaf,
            ..
        } = &mut s
        {
            *n_l = 1;
            *l2_set = 0b01;
            *rem_leaf = None;
        }
        assert_eq!(check_shape(&t, &s), Ok(()));
        let s = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 2,
            leaves: vec![LeafId(0)],
            l2_set: 0b11,
            rem_leaf: Some((LeafId(1), 1, 0b100)),
        };
        assert_eq!(
            check_shape(&t, &s),
            Err(ConditionViolation::RemainderLeafLinks)
        );

        // Leaf from another pod.
        let s = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 1,
            leaves: vec![LeafId(2)],
            l2_set: 0b01,
            rem_leaf: None,
        };
        assert!(matches!(
            check_shape(&t, &s),
            Err(ConditionViolation::MalformedTopologyReference(_))
        ));

        // Duplicate leaf.
        let s = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 1,
            leaves: vec![LeafId(0), LeafId(0)],
            l2_set: 0b01,
            rem_leaf: None,
        };
        assert_eq!(
            check_shape(&t, &s),
            Err(ConditionViolation::DuplicateResource("leaf"))
        );
    }

    fn legal_three_level() -> Shape {
        // N = 11 on the radix-4 tree is impossible (16 nodes, W=2), use
        // N = 2*2*2 + (1*2 + 1) = 11... actually: T=2 trees × (L_T=2 × n_L=2)
        // + remainder tree (1 leaf × 2 + rem leaf 1) = 8 + 3 = 11, matching
        // the paper's Figure 3 shape scaled down.
        Shape::ThreeLevel {
            n_l: 2,
            l_t: 2,
            l2_set: 0b11,
            trees: vec![
                TreeAlloc {
                    pod: PodId(0),
                    leaves: vec![LeafId(0), LeafId(1)],
                },
                TreeAlloc {
                    pod: PodId(1),
                    leaves: vec![LeafId(2), LeafId(3)],
                },
            ],
            spine_sets: vec![0b11, 0b11],
            rem_tree: Some(RemTree {
                pod: PodId(2),
                leaves: vec![LeafId(4)],
                rem_leaf: Some((LeafId(5), 1, 0b01)),
                spine_sets: vec![0b11, 0b01],
            }),
        }
    }

    #[test]
    fn three_level_figure3_analogue_is_legal() {
        let t = tree();
        let s = legal_three_level();
        assert_eq!(check_shape(&t, &s), Ok(()));
        assert_eq!(s.node_count(), 11);
    }

    #[test]
    fn three_level_spine_balance_enforced() {
        let t = tree();
        let mut s = legal_three_level();
        if let Shape::ThreeLevel { spine_sets, .. } = &mut s {
            spine_sets[0] = 0b01; // |S*_0| = 1 != L_T = 2
        }
        assert_eq!(
            check_shape(&t, &s),
            Err(ConditionViolation::UnbalancedSpineUplinks)
        );
    }

    #[test]
    fn three_level_remainder_spine_subset_enforced() {
        let t = tree();
        let mut s = legal_three_level();
        if let Shape::ThreeLevel {
            rem_tree: Some(r), ..
        } = &mut s
        {
            // Remainder L2 position 1 (in S^r? no — S^r = 0b01, so position 1
            // needs L_T^r = 1 uplink) pointing at a spine outside S*_1.
            r.spine_sets[1] = 0b10;
            // Still size 1, but S*_1 = 0b11 so 0b10 ⊆ S*_1 — make parent
            // smaller to force subset violation.
        }
        if let Shape::ThreeLevel {
            trees, spine_sets, ..
        } = &mut s
        {
            // Shrink job: one full tree so L_T slots are 2 but give S*_1 = 0b01.
            let _ = trees;
            spine_sets[1] = 0b01;
        }
        // Now |S*_1| = 1 != L_T = 2 → unbalanced fires first; craft a pure
        // subset violation instead:
        let mut s = legal_three_level();
        if let Shape::ThreeLevel {
            rem_tree: Some(r), ..
        } = &mut s
        {
            r.spine_sets[0] = 0b101; // wrong size and out of group range
        }
        assert!(matches!(
            check_shape(&t, &s),
            Err(ConditionViolation::MalformedTopologyReference(_))
                | Err(ConditionViolation::RemainderSpineLinks)
        ));
    }

    #[test]
    fn three_level_remainder_too_large() {
        let t = tree();
        let mut s = legal_three_level();
        if let Shape::ThreeLevel {
            rem_tree: Some(r), ..
        } = &mut s
        {
            // Remainder tree with 2 full leaves = n_T nodes, not fewer.
            r.leaves = vec![LeafId(4), LeafId(5)];
            r.rem_leaf = None;
            r.spine_sets = vec![0b11, 0b11];
        }
        assert_eq!(
            check_shape(&t, &s),
            Err(ConditionViolation::RemainderTreeTooLarge)
        );
    }

    #[test]
    fn three_level_wrong_tree_size() {
        let t = tree();
        let mut s = legal_three_level();
        if let Shape::ThreeLevel { trees, .. } = &mut s {
            trees[1].leaves.pop(); // condition 1: trees must be identical
        }
        assert!(matches!(
            check_shape(&t, &s),
            Err(ConditionViolation::BadCount(_))
        ));
    }

    #[test]
    fn three_level_duplicate_pod() {
        let t = tree();
        let mut s = legal_three_level();
        if let Shape::ThreeLevel {
            rem_tree: Some(r), ..
        } = &mut s
        {
            r.pod = PodId(0);
            r.leaves = vec![LeafId(0)];
        }
        assert!(matches!(
            check_shape(&t, &s),
            Err(ConditionViolation::DuplicateResource(_))
        ));
    }
}
