//! Structured allocations.
//!
//! An [`Allocation`] is the exact set of nodes and links granted to a job,
//! together with a structured [`Shape`] describing *how* the resources are
//! arranged. The shape is what the formal conditions of §3.2.2 constrain and
//! what the wraparound routing of §4 consumes; the flat resource lists are
//! what the [`SystemState`] bookkeeping
//! claims and releases.

use jigsaw_topology::bitset::iter_mask;
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::ids::{JobId, LeafId, LeafLinkId, NodeId, PodId, SpineLinkId};
use jigsaw_topology::{FatTree, SystemState};
use serde::{Deserialize, Serialize};

/// One full (non-remainder) two-level tree of a three-level allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeAlloc {
    /// The pod hosting this tree of the allocation.
    pub pod: PodId,
    /// The `L_T` leaves holding `n_L` nodes each.
    pub leaves: Vec<LeafId>,
}

/// The optional remainder tree of a three-level allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemTree {
    /// The pod hosting the remainder tree.
    pub pod: PodId,
    /// `L_T^r < L_T` leaves holding `n_L` nodes each.
    pub leaves: Vec<LeafId>,
    /// The optional remainder leaf: `(leaf, n_L^r, S^r)` with
    /// `n_L^r < n_L` nodes and uplinks at positions `S^r ⊂ S`.
    pub rem_leaf: Option<(LeafId, u32, u64)>,
    /// Per L2 position `i`: the spine slots `S*^r_i ⊆ S*_i` this tree's L2
    /// switch `i` uplinks to. Indexed by position; zero for positions ∉ S.
    pub spine_sets: Vec<u64>,
}

/// The arrangement of an allocation's resources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shape {
    /// All nodes under a single leaf switch. Intra-leaf traffic crosses only
    /// the leaf crossbar, so no links are allocated (the high-utilization
    /// condition of §3.2.3 demands the *minimum* number of links).
    SingleLeaf {
        /// The leaf.
        leaf: LeafId,
        /// Node count on it.
        n: u32,
    },
    /// A two-level (single-subtree) allocation: `L_T` leaves with `n_L`
    /// nodes each plus an optional remainder leaf, all within one pod.
    TwoLevel {
        /// The pod.
        pod: PodId,
        /// Nodes per full leaf (`n_L`).
        n_l: u32,
        /// The `L_T` full leaves.
        leaves: Vec<LeafId>,
        /// L2 positions `S` shared by every full leaf; `|S| = n_L`.
        l2_set: u64,
        /// Optional remainder leaf `(leaf, n_L^r, S^r ⊂ S)`.
        rem_leaf: Option<(LeafId, u32, u64)>,
    },
    /// A three-level allocation: `T` identical trees plus an optional
    /// remainder tree, connected through per-position spine sets.
    ThreeLevel {
        /// Nodes per full leaf (`n_L`; equals the leaf size under Jigsaw's
        /// full-leaf restriction, may be smaller under LC+S).
        n_l: u32,
        /// Full leaves per full tree (`L_T`).
        l_t: u32,
        /// L2 positions `S` used in every tree; `|S| = n_L` (condition 5).
        l2_set: u64,
        /// The `T` full trees.
        trees: Vec<TreeAlloc>,
        /// Per L2 position `i ∈ S`: spine slots `S*_i` (condition 6);
        /// `|S*_i| = L_T`. Indexed by position; zero for positions ∉ S.
        spine_sets: Vec<u64>,
        /// Optional remainder tree.
        rem_tree: Option<RemTree>,
    },
    /// No network structure: Baseline and TA allocate nodes only.
    Unstructured,
}

impl Shape {
    /// Number of nodes the shape describes.
    pub fn node_count(&self) -> u32 {
        match self {
            Shape::SingleLeaf { n, .. } => *n,
            Shape::TwoLevel {
                n_l,
                leaves,
                rem_leaf,
                ..
            } => n_l * count_u32(leaves.len()) + rem_leaf.map_or(0, |(_, n, _)| n),
            Shape::ThreeLevel {
                n_l,
                trees,
                rem_tree,
                ..
            } => {
                let full: u32 = trees.iter().map(|t| n_l * count_u32(t.leaves.len())).sum();
                let rem = rem_tree.as_ref().map_or(0, |r| {
                    n_l * count_u32(r.leaves.len()) + r.rem_leaf.map_or(0, |(_, n, _)| n)
                });
                full + rem
            }
            Shape::Unstructured => 0,
        }
    }

    /// Visit every `(leaf, node-count)` pair of the shape, in a
    /// deterministic order (full trees first, remainder last). The
    /// closure-based form lets hot paths walk the shape without building a
    /// list; [`Shape::leaf_occupancy`] is the collecting wrapper.
    pub fn for_each_occupied_leaf(&self, mut f: impl FnMut(LeafId, u32)) {
        match self {
            Shape::SingleLeaf { leaf, n } => f(*leaf, *n),
            Shape::TwoLevel {
                n_l,
                leaves,
                rem_leaf,
                ..
            } => {
                for &l in leaves {
                    f(l, *n_l);
                }
                if let Some((l, n, _)) = rem_leaf {
                    f(*l, *n);
                }
            }
            Shape::ThreeLevel {
                n_l,
                trees,
                rem_tree,
                ..
            } => {
                for t in trees {
                    for &l in &t.leaves {
                        f(l, *n_l);
                    }
                }
                if let Some(r) = rem_tree {
                    for &l in &r.leaves {
                        f(l, *n_l);
                    }
                    if let Some((l, n, _)) = r.rem_leaf {
                        f(l, n);
                    }
                }
            }
            Shape::Unstructured => {}
        }
    }

    /// Every `(leaf, node-count)` pair of the shape, in a deterministic
    /// order (full trees first, remainder last).
    pub fn leaf_occupancy(&self) -> Vec<(LeafId, u32)> {
        let mut v = Vec::new();
        self.for_each_occupied_leaf(|leaf, n| v.push((leaf, n)));
        v
    }

    /// The leaf↔L2 links the shape implies.
    ///
    /// Convenience wrapper over [`Shape::leaf_links_into`], the primary
    /// allocation-free form; hot paths should call `_into` with a reused
    /// buffer.
    #[must_use]
    pub fn leaf_links(&self, tree: &FatTree) -> Vec<LeafLinkId> {
        let mut links = Vec::new();
        self.leaf_links_into(tree, &mut links);
        links
    }

    /// Append the shape's leaf↔L2 links to `links` without allocating.
    pub fn leaf_links_into(&self, tree: &FatTree, links: &mut Vec<LeafLinkId>) {
        match self {
            Shape::SingleLeaf { .. } | Shape::Unstructured => {}
            Shape::TwoLevel {
                leaves,
                l2_set,
                rem_leaf,
                ..
            } => {
                for &leaf in leaves {
                    for pos in iter_mask(*l2_set) {
                        links.push(tree.leaf_link(leaf, pos));
                    }
                }
                if let Some((leaf, _, s_r)) = rem_leaf {
                    for pos in iter_mask(*s_r) {
                        links.push(tree.leaf_link(*leaf, pos));
                    }
                }
            }
            Shape::ThreeLevel {
                l2_set,
                trees,
                rem_tree,
                ..
            } => {
                for t in trees {
                    for &leaf in &t.leaves {
                        for pos in iter_mask(*l2_set) {
                            links.push(tree.leaf_link(leaf, pos));
                        }
                    }
                }
                if let Some(r) = rem_tree {
                    for &leaf in &r.leaves {
                        for pos in iter_mask(*l2_set) {
                            links.push(tree.leaf_link(leaf, pos));
                        }
                    }
                    if let Some((leaf, _, s_r)) = r.rem_leaf {
                        for pos in iter_mask(s_r) {
                            links.push(tree.leaf_link(leaf, pos));
                        }
                    }
                }
            }
        }
    }

    /// The L2↔spine links the shape implies (three-level shapes only).
    ///
    /// Convenience wrapper over [`Shape::spine_links_into`], the primary
    /// allocation-free form; hot paths should call `_into` with a reused
    /// buffer.
    #[must_use]
    pub fn spine_links(&self, tree: &FatTree) -> Vec<SpineLinkId> {
        let mut links = Vec::new();
        self.spine_links_into(tree, &mut links);
        links
    }

    /// Append the shape's L2↔spine links to `links` without allocating.
    pub fn spine_links_into(&self, tree: &FatTree, links: &mut Vec<SpineLinkId>) {
        if let Shape::ThreeLevel {
            trees,
            spine_sets,
            rem_tree,
            ..
        } = self
        {
            for t in trees {
                for (pos, &slots) in spine_sets.iter().enumerate() {
                    for slot in iter_mask(slots) {
                        links.push(tree.spine_link_at(t.pod, count_u32(pos), slot));
                    }
                }
            }
            if let Some(r) = rem_tree {
                for (pos, &slots) in r.spine_sets.iter().enumerate() {
                    for slot in iter_mask(slots) {
                        links.push(tree.spine_link_at(r.pod, count_u32(pos), slot));
                    }
                }
            }
        }
    }
}

/// The exact resources granted to one job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// The owning job.
    pub job: JobId,
    /// Nodes the job asked for (`N_r`). May be smaller than `nodes.len()`
    /// under LaaS, whose rounding *assigns* extra nodes the job cannot use
    /// (internal fragmentation, Fig. 2-left of the paper).
    pub requested: u32,
    /// The specific nodes assigned.
    pub nodes: Vec<NodeId>,
    /// Exclusively owned (or bandwidth-shared) leaf↔L2 links.
    pub leaf_links: Vec<LeafLinkId>,
    /// Exclusively owned (or bandwidth-shared) L2↔spine links.
    pub spine_links: Vec<SpineLinkId>,
    /// `0` ⇒ links are owned exclusively; `> 0` ⇒ that much bandwidth
    /// (tenths of GB/s) is reserved on each link (LC+S).
    pub bw_tenths: u16,
    /// The structured arrangement.
    pub shape: Shape,
}

impl Allocation {
    /// Build an allocation from a shape by picking the lowest-indexed free
    /// nodes on each leaf of the shape. The shape's resources must be
    /// available in `state` (allocator searches guarantee this).
    pub fn from_shape(
        state: &SystemState,
        job: JobId,
        requested: u32,
        bw_tenths: u16,
        shape: Shape,
    ) -> Allocation {
        Allocation::from_shape_with(
            &mut crate::scratch::SearchScratch::default(),
            state,
            job,
            requested,
            bw_tenths,
            shape,
        )
    }

    /// [`Allocation::from_shape`] drawing the node and link vectors from a
    /// [`SearchScratch`](crate::scratch::SearchScratch) — alloc-free once
    /// the pools are warm. [`SearchScratch::recycle`](crate::scratch::SearchScratch::recycle)
    /// returns the vectors when the allocation is spent.
    pub fn from_shape_with(
        scratch: &mut crate::scratch::SearchScratch,
        state: &SystemState,
        job: JobId,
        requested: u32,
        bw_tenths: u16,
        shape: Shape,
    ) -> Allocation {
        let tree = state.tree();
        let mut nodes = scratch.nodes.take();
        shape.for_each_occupied_leaf(|leaf, count| {
            free_nodes_on_into(state, leaf, count, &mut nodes);
        });
        let mut leaf_links = scratch.leaf_links.take();
        shape.leaf_links_into(tree, &mut leaf_links);
        let mut spine_links = scratch.spine_links.take();
        shape.spine_links_into(tree, &mut spine_links);
        Allocation {
            job,
            requested,
            nodes,
            leaf_links,
            spine_links,
            bw_tenths,
            shape,
        }
    }

    /// Total links of both layers.
    pub fn link_count(&self) -> usize {
        self.leaf_links.len() + self.spine_links.len()
    }

    /// `true` iff this allocation shares no node or link with `other`.
    /// Fractionally shared links are still counted as an intersection.
    pub fn is_disjoint_from(&self, other: &Allocation) -> bool {
        fn disjoint<T: Ord + Copy>(a: &[T], b: &[T]) -> bool {
            // Resource lists are small; sort-free quadratic scan would be
            // fine for leaves, but allocations can carry thousands of links
            // on big jobs, so use hashing-free merge over sorted copies.
            let mut a: Vec<T> = a.to_vec();
            let mut b: Vec<T> = b.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return false,
                }
            }
            true
        }
        disjoint(&self.nodes, &other.nodes)
            && disjoint(&self.leaf_links, &other.leaf_links)
            && disjoint(&self.spine_links, &other.spine_links)
    }
}

/// The lowest-indexed `count` free nodes under `leaf`.
///
/// Convenience wrapper over [`free_nodes_on_into`], the primary
/// allocation-free form; hot paths should call `_into` with a reused buffer.
///
/// # Panics
/// If the leaf has fewer free nodes (allocator search bug).
#[must_use]
pub fn free_nodes_on(state: &SystemState, leaf: LeafId, count: u32) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(count as usize);
    free_nodes_on_into(state, leaf, count, &mut out);
    out
}

/// Append the lowest-indexed `count` free nodes under `leaf` to `out`
/// without allocating: one `u64` mask walk, no per-slot ownership probes.
///
/// # Panics
/// If the leaf has fewer free nodes (allocator search bug).
pub fn free_nodes_on_into(state: &SystemState, leaf: LeafId, count: u32, out: &mut Vec<NodeId>) {
    let before = out.len();
    out.extend(state.free_nodes_on_leaf_iter(leaf).take(count as usize));
    assert!(
        out.len() - before == count as usize,
        "leaf {leaf} has fewer than {count} free nodes"
    );
}

/// Claim every resource of `alloc` in `state`.
///
/// Exclusive mode (`bw_tenths == 0`) takes ownership of each link;
/// fractional mode reserves bandwidth instead.
///
/// # Panics
/// On any isolation violation (resource already taken) — allocator searches
/// must only produce available resources.
pub fn claim_allocation(state: &mut SystemState, alloc: &Allocation) {
    for &n in &alloc.nodes {
        state.claim_node(n, alloc.job);
    }
    if alloc.bw_tenths == 0 {
        for &l in &alloc.leaf_links {
            state.claim_leaf_link(l, alloc.job);
        }
        for &l in &alloc.spine_links {
            state.claim_spine_link(l, alloc.job);
        }
    } else {
        for &l in &alloc.leaf_links {
            assert!(
                state.try_reserve_leaf_link_bw(l, alloc.bw_tenths),
                "bandwidth over-commit on {l}"
            );
        }
        for &l in &alloc.spine_links {
            assert!(
                state.try_reserve_spine_link_bw(l, alloc.bw_tenths),
                "bandwidth over-commit on {l}"
            );
        }
    }
}

/// Release every resource of `alloc` from `state`.
pub fn release_allocation(state: &mut SystemState, alloc: &Allocation) {
    for &n in &alloc.nodes {
        state.release_node(n);
    }
    if alloc.bw_tenths == 0 {
        for &l in &alloc.leaf_links {
            state.release_leaf_link(l);
        }
        for &l in &alloc.spine_links {
            state.release_spine_link(l);
        }
    } else {
        for &l in &alloc.leaf_links {
            state.release_leaf_link_bw(l, alloc.bw_tenths);
        }
        for &l in &alloc.spine_links {
            state.release_spine_link_bw(l, alloc.bw_tenths);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_topology::FatTree;

    fn tiny_state() -> SystemState {
        SystemState::new(FatTree::maximal(4).unwrap())
    }

    #[test]
    fn single_leaf_shape_has_no_links() {
        let state = tiny_state();
        let shape = Shape::SingleLeaf {
            leaf: LeafId(2),
            n: 2,
        };
        assert_eq!(shape.node_count(), 2);
        assert!(shape.leaf_links(state.tree()).is_empty());
        assert!(shape.spine_links(state.tree()).is_empty());
    }

    #[test]
    fn two_level_shape_links() {
        let state = tiny_state();
        // Pod 0, two leaves with 1 node each on L2 position 0,
        // no remainder.
        let shape = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 1,
            leaves: vec![LeafId(0), LeafId(1)],
            l2_set: 0b01,
            rem_leaf: None,
        };
        assert_eq!(shape.node_count(), 2);
        let links = shape.leaf_links(state.tree());
        assert_eq!(links.len(), 2);
        assert!(shape.spine_links(state.tree()).is_empty());
    }

    #[test]
    fn three_level_shape_links_count() {
        let state = tiny_state();
        let tree = *state.tree();
        // Two pods, each with 2 full leaves of 2 nodes (full pods), all L2
        // positions, spine sets of size L_T = 2 per position.
        let shape = Shape::ThreeLevel {
            n_l: 2,
            l_t: 2,
            l2_set: 0b11,
            trees: vec![
                TreeAlloc {
                    pod: PodId(0),
                    leaves: vec![LeafId(0), LeafId(1)],
                },
                TreeAlloc {
                    pod: PodId(1),
                    leaves: vec![LeafId(2), LeafId(3)],
                },
            ],
            spine_sets: vec![0b11, 0b11],
            rem_tree: None,
        };
        assert_eq!(shape.node_count(), 8);
        // 4 leaves × 2 uplinks.
        assert_eq!(shape.leaf_links(&tree).len(), 8);
        // 2 pods × 2 positions × 2 spine slots.
        assert_eq!(shape.spine_links(&tree).len(), 8);
    }

    #[test]
    fn claim_release_roundtrip_exclusive() {
        let mut state = tiny_state();
        let shape = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 1,
            leaves: vec![LeafId(0), LeafId(1)],
            l2_set: 0b01,
            rem_leaf: None,
        };
        let alloc = Allocation::from_shape(&state, JobId(1), 2, 0, shape);
        assert_eq!(alloc.nodes, vec![NodeId(0), NodeId(2)]);
        claim_allocation(&mut state, &alloc);
        assert_eq!(state.allocated_node_count(), 2);
        assert_eq!(state.leaf_uplink_free_mask(LeafId(0)), 0b10);
        state.assert_consistent();
        release_allocation(&mut state, &alloc);
        assert_eq!(state.allocated_node_count(), 0);
        assert_eq!(state.leaf_uplink_free_mask(LeafId(0)), 0b11);
        state.assert_consistent();
    }

    #[test]
    fn claim_release_roundtrip_fractional() {
        let mut state = tiny_state();
        let shape = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 1,
            leaves: vec![LeafId(0), LeafId(1)],
            l2_set: 0b01,
            rem_leaf: None,
        };
        let link = state.tree().leaf_link(LeafId(0), 0);
        let a = Allocation::from_shape(&state, JobId(1), 2, 15, shape.clone());
        claim_allocation(&mut state, &a);
        assert_eq!(state.leaf_link_bw_used(link), 15);
        // A second fractional job can share the same links.
        let mut nodes_shape = shape;
        if let Shape::TwoLevel {
            n_l: _, leaves: _, ..
        } = &mut nodes_shape
        {}
        let b = Allocation {
            job: JobId(2),
            requested: 2,
            nodes: vec![NodeId(1), NodeId(3)],
            leaf_links: a.leaf_links.clone(),
            spine_links: vec![],
            bw_tenths: 20,
            shape: Shape::Unstructured,
        };
        claim_allocation(&mut state, &b);
        assert_eq!(state.leaf_link_bw_used(link), 35);
        release_allocation(&mut state, &a);
        release_allocation(&mut state, &b);
        assert_eq!(state.leaf_link_bw_used(link), 0);
        state.assert_consistent();
    }

    #[test]
    fn disjointness() {
        let state = tiny_state();
        let a = Allocation::from_shape(
            &state,
            JobId(1),
            2,
            0,
            Shape::SingleLeaf {
                leaf: LeafId(0),
                n: 2,
            },
        );
        let b = Allocation::from_shape(
            &state,
            JobId(2),
            2,
            0,
            Shape::SingleLeaf {
                leaf: LeafId(1),
                n: 2,
            },
        );
        assert!(a.is_disjoint_from(&b));
        assert!(!a.is_disjoint_from(&a));
    }

    #[test]
    #[should_panic(expected = "fewer than")]
    fn from_shape_panics_when_leaf_exhausted() {
        let mut state = tiny_state();
        state.claim_node(NodeId(0), JobId(9));
        state.claim_node(NodeId(1), JobId(9));
        let _ = Allocation::from_shape(
            &state,
            JobId(1),
            1,
            0,
            Shape::SingleLeaf {
                leaf: LeafId(0),
                n: 1,
            },
        );
    }

    #[test]
    fn leaf_occupancy_orders_remainder_last() {
        let shape = Shape::TwoLevel {
            pod: PodId(0),
            n_l: 2,
            leaves: vec![LeafId(0)],
            l2_set: 0b11,
            rem_leaf: Some((LeafId(1), 1, 0b01)),
        };
        assert_eq!(shape.leaf_occupancy(), vec![(LeafId(0), 2), (LeafId(1), 1)]);
        assert_eq!(shape.node_count(), 3);
    }
}
