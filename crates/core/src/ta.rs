//! The topology-aware (TA) allocator [Jain et al. 2017], as evaluated by
//! the paper (§5.2.2).
//!
//! TA never allocates links explicitly. Instead it enforces node-placement
//! rules that make link contention impossible under *any* routing:
//!
//! * **leaf jobs** (≤ nodes-per-leaf) must fit on a single leaf — their
//!   traffic never leaves the leaf crossbar — and may share leaves only
//!   with other leaf jobs ("a job of a given type will not be able to
//!   share leaves ... with other jobs of certain types", §5.2.2);
//! * **pod jobs** (≤ nodes-per-pod) must fit within a single pod, and every
//!   leaf they touch becomes exclusively theirs among pod/machine jobs —
//!   the leaf's uplinks are implicitly reserved (the internal link
//!   fragmentation of Fig. 2-center);
//! * **machine jobs** (larger) may span pods, but no two machine jobs may
//!   share a pod (both would conceivably use the pod's spine uplinks), and
//!   they obey the same leaf exclusivity.
//!
//! The "must fit on a single leaf / in a single pod, if it can" rules are
//! TA's source of external fragmentation (Fig. 2-right): a 3-node job is
//! rejected even when 3 nodes are free, if no single leaf holds 3.

use crate::alloc::{claim_allocation, release_allocation, Allocation, Shape};
use crate::allocator::{Allocator, Decision};
use crate::job::JobRequest;
use crate::reject::{FitHintCache, Reject, RejectReason};
use jigsaw_topology::cast::count_u32;
use jigsaw_topology::ids::{LeafId, NodeId, PodId};
use jigsaw_topology::{FatTree, SystemState};

const NONE: u32 = u32::MAX;

/// Job classes under TA's placement rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaClass {
    /// Fits on one leaf; traffic never touches a link.
    Leaf,
    /// Fits in one pod; implicitly owns the uplinks of its leaves.
    Pod,
    /// Spans pods; additionally owns the spine uplinks of its pods.
    Machine,
}

/// The TA allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct TaAllocator {
    /// Pod-or-machine job implicitly owning each leaf's uplinks.
    leaf_excl: Vec<u32>,
    /// Number of leaf-class jobs resident on each leaf (leaf-class jobs
    /// exclude pod/machine jobs from the leaf and vice versa).
    leaf_small: Vec<u16>,
    /// Machine job implicitly owning each pod's spine uplinks.
    pod_machine: Vec<u32>,
    nodes_per_leaf: u32,
    nodes_per_pod: u32,
    steps: u64,
    fit_hint: FitHintCache,
}

impl TaAllocator {
    /// Build a TA allocator for `tree`.
    pub fn new(tree: &FatTree) -> Self {
        assert!(
            tree.is_full_bandwidth(),
            "TA's contention-freedom argument assumes a full-bandwidth fat-tree"
        );
        TaAllocator {
            leaf_excl: vec![NONE; tree.num_leaves() as usize],
            leaf_small: vec![0; tree.num_leaves() as usize],
            pod_machine: vec![NONE; tree.num_pods() as usize],
            nodes_per_leaf: tree.nodes_per_leaf(),
            nodes_per_pod: tree.nodes_per_pod(),
            steps: 0,
            fit_hint: FitHintCache::new(),
        }
    }

    /// TA's class for a job of `size` nodes.
    pub fn classify(&self, size: u32) -> TaClass {
        if size <= self.nodes_per_leaf {
            TaClass::Leaf
        } else if size <= self.nodes_per_pod {
            TaClass::Pod
        } else {
            TaClass::Machine
        }
    }

    /// `true` iff `leaf` may host nodes of a new pod/machine job: not held
    /// by another pod/machine job and free of leaf-class jobs.
    fn leaf_available(&self, leaf: LeafId) -> bool {
        self.leaf_excl[leaf.idx()] == NONE && self.leaf_small[leaf.idx()] == 0
    }

    fn take_nodes(
        &self,
        state: &SystemState,
        leaves: impl Iterator<Item = LeafId>,
        size: u32,
    ) -> (Vec<NodeId>, Vec<LeafId>) {
        let mut nodes = Vec::with_capacity(size as usize);
        let mut touched = Vec::new();
        for leaf in leaves {
            if count_u32(nodes.len()) == size {
                break;
            }
            if state.free_nodes_on_leaf(leaf) == 0 {
                continue;
            }
            let before = nodes.len();
            for node in state.free_nodes_on_leaf_iter(leaf) {
                if count_u32(nodes.len()) == size {
                    break;
                }
                nodes.push(node);
            }
            if nodes.len() > before {
                touched.push(leaf);
            }
        }
        (nodes, touched)
    }

    /// The class-rule placement search, claiming on success (the body behind
    /// [`Allocator::decide`] and the empty-machine fit probe).
    fn search_claim(
        &mut self,
        state: &mut SystemState,
        req: &JobRequest,
    ) -> Result<Allocation, RejectReason> {
        self.steps = 0;
        if req.size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if state.free_node_count() < req.size {
            return Err(RejectReason::NoNodes {
                free: state.free_node_count(),
                requested: req.size,
            });
        }
        let tree = *state.tree();
        let (nodes, touched) = match self.classify(req.size) {
            TaClass::Leaf => {
                // Single leaf with enough free nodes, not held by a
                // pod/machine job — no spreading allowed (Fig. 2-right).
                let mut found = None;
                for leaf in tree.leaves() {
                    self.steps += 1;
                    if self.leaf_excl[leaf.idx()] == NONE
                        && state.free_nodes_on_leaf(leaf) >= req.size
                    {
                        found = Some(leaf);
                        break;
                    }
                }
                let Some(leaf) = found else {
                    // A leaf with room exists but is class-held: the
                    // sharing rules, not fragmentation, block placement.
                    let blocked = tree.leaves().any(|l| {
                        self.leaf_excl[l.idx()] != NONE && state.free_nodes_on_leaf(l) >= req.size
                    });
                    return Err(if blocked {
                        RejectReason::SharingConflict
                    } else {
                        RejectReason::NoShape
                    });
                };
                self.leaf_small[leaf.idx()] += 1;
                (
                    state
                        .free_nodes_on_leaf_iter(leaf)
                        .take(req.size as usize)
                        .collect::<Vec<_>>(),
                    Vec::new(),
                )
            }
            TaClass::Pod => {
                // Single pod, counting only leaves not held by another
                // pod/machine job.
                let mut placed = None;
                for pod in tree.pods() {
                    self.steps += 1;
                    let free: u32 = tree
                        .leaves_of_pod(pod)
                        .filter(|&l| self.leaf_available(l))
                        .map(|l| state.free_nodes_on_leaf(l))
                        .sum();
                    if free >= req.size {
                        let eligible = tree.leaves_of_pod(pod).filter(|&l| self.leaf_available(l));
                        placed = Some(self.take_nodes(state, eligible, req.size));
                        break;
                    }
                }
                let Some(placed) = placed else {
                    // Enough free nodes sit in some single pod ignoring
                    // class eligibility → the sharing rules are what block.
                    let fits_raw = tree.pods().any(|pod| {
                        tree.leaves_of_pod(pod)
                            .map(|l| state.free_nodes_on_leaf(l))
                            .sum::<u32>()
                            >= req.size
                    });
                    return Err(if fits_raw {
                        RejectReason::SharingConflict
                    } else {
                        RejectReason::NoShape
                    });
                };
                placed
            }
            TaClass::Machine => {
                // Whole machine, skipping pods already hosting a machine job
                // and leaves held by other pod/machine jobs.
                let eligible_pods: Vec<PodId> = tree
                    .pods()
                    .filter(|p| self.pod_machine[p.idx()] == NONE)
                    .collect();
                self.steps += eligible_pods.len() as u64;
                let free: u32 = eligible_pods
                    .iter()
                    .flat_map(|&p| tree.leaves_of_pod(p))
                    .filter(|&l| self.leaf_available(l))
                    .map(|l| state.free_nodes_on_leaf(l))
                    .sum();
                if free < req.size {
                    // Raw free nodes suffice (checked on entry); what is
                    // missing is *eligible* capacity — pods held by other
                    // machine jobs or class-held leaves.
                    return Err(RejectReason::SharingConflict);
                }
                let eligible = eligible_pods
                    .iter()
                    .flat_map(|&p| tree.leaves_of_pod(p))
                    .filter(|&l| self.leaf_available(l));
                let picked = self.take_nodes(state, eligible, req.size);
                // Record the pods this machine job touches.
                let mut pods_touched: Vec<PodId> =
                    picked.1.iter().map(|&l| tree.pod_of_leaf(l)).collect();
                pods_touched.dedup();
                for pod in pods_touched {
                    self.pod_machine[pod.idx()] = req.id.0;
                }
                picked
            }
        };

        debug_assert_eq!(count_u32(nodes.len()), req.size);
        for leaf in touched {
            self.leaf_excl[leaf.idx()] = req.id.0;
        }
        let alloc = Allocation {
            job: req.id,
            requested: req.size,
            nodes,
            leaf_links: Vec::new(),
            spine_links: Vec::new(),
            bw_tenths: 0,
            shape: Shape::Unstructured,
        };
        claim_allocation(state, &alloc);
        Ok(alloc)
    }
}

impl Allocator for TaAllocator {
    fn name(&self) -> &'static str {
        "TA"
    }

    fn decide(&mut self, state: &mut SystemState, req: &JobRequest) -> Decision {
        match self.search_claim(state, req) {
            Ok(alloc) => Decision::Admit(alloc),
            Err(reason) => {
                let tree = *state.tree();
                let hint = self.fit_hint.hint(req.size, req.bw_tenths, || {
                    let mut probe = TaAllocator::new(&tree);
                    probe.search_claim(&mut SystemState::new(tree), req).is_ok()
                });
                Decision::Reject(Reject::with_hint(reason, hint))
            }
        }
    }

    fn adopt(&mut self, state: &mut SystemState, alloc: &Allocation) {
        let tree = *state.tree();
        claim_allocation(state, alloc);
        match self.classify(alloc.requested) {
            TaClass::Leaf => {
                if let Some(&node) = alloc.nodes.first() {
                    self.leaf_small[tree.leaf_of_node(node).idx()] += 1;
                }
            }
            TaClass::Pod => {
                for &node in &alloc.nodes {
                    self.leaf_excl[tree.leaf_of_node(node).idx()] = alloc.job.0;
                }
            }
            TaClass::Machine => {
                for &node in &alloc.nodes {
                    let leaf = tree.leaf_of_node(node);
                    self.leaf_excl[leaf.idx()] = alloc.job.0;
                    self.pod_machine[tree.pod_of_leaf(leaf).idx()] = alloc.job.0;
                }
            }
        }
    }

    fn release(&mut self, state: &mut SystemState, alloc: &Allocation) {
        if self.classify(alloc.requested) == TaClass::Leaf {
            if let Some(&node) = alloc.nodes.first() {
                let leaf = state.tree().leaf_of_node(node);
                self.leaf_small[leaf.idx()] -= 1;
            }
        }
        release_allocation(state, alloc);
        let id = alloc.job.0;
        for slot in self.leaf_excl.iter_mut() {
            if *slot == id {
                *slot = NONE;
            }
        }
        for slot in self.pod_machine.iter_mut() {
            if *slot == id {
                *slot = NONE;
            }
        }
    }

    fn last_search_steps(&self) -> u64 {
        self.steps
    }

    fn clone_box(&self) -> Box<dyn Allocator> {
        Box::new(self.clone())
    }

    fn fresh_box(&self) -> Box<dyn Allocator> {
        Box::new(TaAllocator {
            leaf_excl: vec![NONE; self.leaf_excl.len()],
            leaf_small: vec![0; self.leaf_small.len()],
            pod_machine: vec![NONE; self.pod_machine.len()],
            nodes_per_leaf: self.nodes_per_leaf,
            nodes_per_pod: self.nodes_per_pod,
            steps: 0,
            fit_hint: FitHintCache::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_topology::ids::JobId;

    fn setup(radix: u32) -> (SystemState, TaAllocator) {
        let tree = FatTree::maximal(radix).unwrap();
        let ta = TaAllocator::new(&tree);
        (SystemState::new(tree), ta)
    }

    #[test]
    fn classes() {
        let (_, ta) = setup(8); // leaf = 4, pod = 16
        assert_eq!(ta.classify(4), TaClass::Leaf);
        assert_eq!(ta.classify(5), TaClass::Pod);
        assert_eq!(ta.classify(16), TaClass::Pod);
        assert_eq!(ta.classify(17), TaClass::Machine);
    }

    #[test]
    fn figure2_right_external_fragmentation() {
        // The paper's Fig. 2-right: a 3-node job cannot be placed although
        // 3 nodes are free, because no single leaf has 3 free nodes.
        let (mut state, mut ta) = setup(8); // leaves of 4 nodes
        let tree = *state.tree();
        // Leave exactly one node free on three leaves, fill the rest.
        for (i, leaf) in tree.leaves().enumerate() {
            let keep_free = if i < 3 { 1 } else { 0 };
            for node in tree.nodes_of_leaf(leaf).skip(keep_free) {
                state.claim_node(node, JobId(99));
            }
        }
        assert_eq!(state.free_node_count(), 3);
        let reject = ta
            .try_admit(&mut state, &JobRequest::new(JobId(1), 3))
            .unwrap_err();
        assert_eq!(
            reject.reason,
            RejectReason::NoShape,
            "TA must reject the spread placement Jigsaw would accept"
        );
        // A 3-node job fits a single leaf of an empty machine: pure
        // fragmentation, and the hint says so.
        assert!(reject.is_fragmentation());
    }

    #[test]
    fn pod_job_confined_to_one_pod() {
        let (mut state, mut ta) = setup(4); // pods of 4 nodes
        let tree = *state.tree();
        let a = ta
            .try_admit(&mut state, &JobRequest::new(JobId(1), 4))
            .unwrap();
        let pods: std::collections::HashSet<_> =
            a.nodes.iter().map(|&n| tree.pod_of_node(n)).collect();
        assert_eq!(pods.len(), 1);
    }

    #[test]
    fn pod_jobs_exclude_each_other_from_leaves() {
        let (mut state, mut ta) = setup(8); // leaves of 4, pods of 16
                                            // Job A: 6 nodes → pod class, touches 2 leaves of pod 0.
        let a = ta
            .try_admit(&mut state, &JobRequest::new(JobId(1), 6))
            .unwrap();
        // Job B: 12 nodes → pod class. Pod 0 has 10 free nodes but 2 nodes
        // sit on a leaf A touches; eligible free = 8 < 12 → B must go to
        // pod 1.
        let b = ta
            .try_admit(&mut state, &JobRequest::new(JobId(2), 12))
            .unwrap();
        let tree = *state.tree();
        let pods_b: std::collections::HashSet<_> =
            b.nodes.iter().map(|&n| tree.pod_of_node(n)).collect();
        assert_eq!(pods_b.len(), 1);
        assert!(
            !pods_b.contains(&PodId(0)) || {
                // If B landed in pod 0 it must not share any leaf with A.
                let leaves_a: std::collections::HashSet<_> =
                    a.nodes.iter().map(|&n| tree.leaf_of_node(n)).collect();
                b.nodes
                    .iter()
                    .all(|&n| !leaves_a.contains(&tree.leaf_of_node(n)))
            }
        );
    }

    #[test]
    fn class_mixing_on_a_leaf_is_forbidden() {
        // The source of TA's external fragmentation: nodes stranded on a
        // pod job's leaf are unusable even by leaf jobs, and vice versa.
        let (mut state, mut ta) = setup(8);
        let tree = *state.tree();
        // 7-node pod job: touches leaves 0 and 1, leaving 1 free node on
        // leaf 1 — stranded.
        let _a = ta
            .try_admit(&mut state, &JobRequest::new(JobId(1), 7))
            .unwrap();
        assert_eq!(state.free_nodes_on_leaf(LeafId(1)), 1);
        let b = ta
            .try_admit(&mut state, &JobRequest::new(JobId(2), 1))
            .unwrap();
        assert_ne!(
            tree.leaf_of_node(b.nodes[0]),
            LeafId(1),
            "leaf job must avoid the pod job's leaf"
        );
        // And a pod job avoids leaves hosting leaf jobs: put a 3-node leaf
        // job on every remaining leaf (first-fit spreads them), leaving one
        // stranded node per leaf.
        for i in 0..30u32 {
            let _ = ta.try_admit(&mut state, &JobRequest::new(JobId(10 + i), 3));
        }
        // Plenty of free nodes remain, but no class-clean leaves.
        assert!(
            state.free_node_count() >= 16,
            "{} free",
            state.free_node_count()
        );
        // Free nodes exist machine-wide but class mixing stranded them one
        // per leaf, so no single pod can field 16 even ignoring classes:
        // the attempt reports the shape restriction as binding.
        assert_eq!(
            ta.try_admit(&mut state, &JobRequest::new(JobId(99), 16))
                .map_err(|r| r.reason),
            Err(RejectReason::NoShape)
        );
    }

    #[test]
    fn machine_jobs_never_share_pods() {
        let (mut state, mut ta) = setup(4); // pods of 4 nodes, 16 total
        let tree = *state.tree();
        // Machine job A: 6 nodes over pods 0-1.
        let a = ta
            .try_admit(&mut state, &JobRequest::new(JobId(1), 6))
            .unwrap();
        let pods_a: std::collections::HashSet<_> =
            a.nodes.iter().map(|&n| tree.pod_of_node(n)).collect();
        // Machine job B: 6 nodes; must avoid every pod A touches.
        let b = ta
            .try_admit(&mut state, &JobRequest::new(JobId(2), 6))
            .unwrap();
        let pods_b: std::collections::HashSet<_> =
            b.nodes.iter().map(|&n| tree.pod_of_node(n)).collect();
        assert!(pods_a.is_disjoint(&pods_b));
        // A third machine job cannot fit: no two machine-free pods remain.
        assert!(ta
            .try_admit(&mut state, &JobRequest::new(JobId(3), 6))
            .is_err());
    }

    #[test]
    fn release_restores_eligibility() {
        let (mut state, mut ta) = setup(4);
        let a = ta
            .try_admit(&mut state, &JobRequest::new(JobId(1), 6))
            .unwrap();
        let b = ta
            .try_admit(&mut state, &JobRequest::new(JobId(2), 6))
            .unwrap();
        assert!(ta
            .try_admit(&mut state, &JobRequest::new(JobId(3), 6))
            .is_err());
        ta.release(&mut state, &a);
        ta.release(&mut state, &b);
        // Eligibility fully restored.
        let c = ta
            .try_admit(&mut state, &JobRequest::new(JobId(3), 6))
            .unwrap();
        assert_eq!(c.nodes.len(), 6);
        state.assert_consistent();
    }
}
