//! Mutation testing of the formal-conditions checker: every systematic
//! way of breaking a legal shape must be caught — by `check_shape`
//! directly, and (for the link-visible mutations) by the constructive
//! router failing or producing contention.
//!
//! This is the executable counterpart of the *necessity* direction of the
//! paper's Appendix A: no looser conditions suffice.

use jigsaw_core::alloc::{Allocation, Shape};
use jigsaw_core::allocator::Allocator;
use jigsaw_core::conditions::check_shape;
use jigsaw_core::{JigsawAllocator, JobRequest};
use jigsaw_topology::ids::{JobId, LeafId};
use jigsaw_topology::{FatTree, SystemState};

/// A canonical legal three-level shape with remainder tree and leaf —
/// Figure 3 of the paper, hand-built on the radix-8 machine so that the
/// spine sets are strict subsets of each group (leaving "foreign" spines
/// for the superset mutations to reach for).
fn figure3_allocation() -> (FatTree, Allocation) {
    use jigsaw_core::alloc::{RemTree, TreeAlloc};
    use jigsaw_topology::ids::PodId;
    let tree = FatTree::maximal(8).unwrap(); // W = M = 4, L = G = 4, P = 8
    let state = SystemState::new(tree);
    // T = 2 trees × (L_T = 2 leaves × n_L = 4) + remainder tree
    // (1 full leaf + remainder leaf of 3): N = 23, |S*_i| = 2 ⊂ 4 slots.
    let shape = Shape::ThreeLevel {
        n_l: 4,
        l_t: 2,
        l2_set: 0b1111,
        trees: vec![
            TreeAlloc {
                pod: PodId(0),
                leaves: vec![LeafId(0), LeafId(1)],
            },
            TreeAlloc {
                pod: PodId(1),
                leaves: vec![LeafId(4), LeafId(5)],
            },
        ],
        spine_sets: vec![0b0011; 4],
        rem_tree: Some(RemTree {
            pod: PodId(2),
            leaves: vec![LeafId(8)],
            rem_leaf: Some((LeafId(9), 3, 0b0111)),
            // L_T^r = 1, +1 where the remainder leaf connects (S^r).
            spine_sets: vec![0b0011, 0b0011, 0b0011, 0b0001],
        }),
    };
    let alloc = Allocation::from_shape(&state, JobId(1), 23, 0, shape);
    (tree, alloc)
}

/// Apply `mutate` to a fresh copy of the Figure-3 shape and assert the
/// checker rejects it.
fn assert_rejected(label: &str, mutate: impl FnOnce(&mut Shape)) {
    let (tree, alloc) = figure3_allocation();
    let mut shape = alloc.shape.clone();
    check_shape(&tree, &shape).expect("the unmutated shape is legal");
    mutate(&mut shape);
    assert!(
        check_shape(&tree, &shape).is_err(),
        "mutation `{label}` must violate the formal conditions"
    );
}

#[test]
fn unbalanced_tree_sizes_rejected() {
    // Condition 1: trees must be identical.
    assert_rejected("drop a leaf from one full tree", |shape| {
        if let Shape::ThreeLevel { trees, .. } = shape {
            trees[0].leaves.pop();
        }
    });
}

#[test]
fn oversized_remainder_tree_rejected() {
    // Condition 1: n_T^r < n_T.
    assert_rejected("grow the remainder tree to full size", |shape| {
        if let Shape::ThreeLevel {
            trees,
            rem_tree: Some(rem),
            ..
        } = shape
        {
            // Copy a full tree's leaf count into the remainder.
            let donor_pod = rem.pod;
            let l_t = trees[0].leaves.len();
            let tree = FatTree::maximal(8).unwrap();
            rem.leaves = tree.leaves_of_pod(donor_pod).take(l_t).collect();
            rem.rem_leaf = None;
            for set in rem.spine_sets.iter_mut() {
                // Keep sizes consistent with a full tree so only
                // condition 1 fires.
                *set = 0b11;
            }
        }
    });
}

#[test]
fn tapered_l2_set_rejected() {
    // Balance / Fig. 1-left: |S| must equal n_L.
    assert_rejected("shrink S below n_L", |shape| {
        if let Shape::ThreeLevel { l2_set, .. } = shape {
            *l2_set &= !1; // drop position 0
        }
    });
}

#[test]
fn unbalanced_spine_set_rejected() {
    // Condition 6: |S*_i| must equal L_T.
    assert_rejected("drop one spine slot at position 0", |shape| {
        if let Shape::ThreeLevel { spine_sets, .. } = shape {
            let low = spine_sets[0] & spine_sets[0].wrapping_neg();
            spine_sets[0] &= !low;
        }
    });
}

#[test]
fn remainder_spine_superset_rejected() {
    // Condition 6: S*^r_i ⊆ S*_i.
    assert_rejected("point the remainder at a foreign spine", |shape| {
        if let Shape::ThreeLevel {
            spine_sets,
            rem_tree: Some(rem),
            ..
        } = shape
        {
            let foreign = !spine_sets[0] & 0b1111;
            assert!(foreign != 0, "test needs a spine outside S*_0");
            let low = foreign & foreign.wrapping_neg();
            let old_low = rem.spine_sets[0] & rem.spine_sets[0].wrapping_neg();
            rem.spine_sets[0] = (rem.spine_sets[0] & !old_low) | low;
        }
    });
}

#[test]
fn remainder_leaf_links_outside_s_rejected() {
    // Condition 4: S^r ⊂ S.
    assert_rejected("remainder leaf uplink outside S", |shape| {
        if let Shape::ThreeLevel {
            l2_set,
            rem_tree: Some(rem),
            ..
        } = shape
        {
            if let Some((_, _, s_r)) = &mut rem.rem_leaf {
                let outside = !*l2_set & 0b1111;
                if outside == 0 {
                    // S is the full set on this machine; force the size
                    // violation instead.
                    *s_r |= *l2_set;
                } else {
                    *s_r = outside & outside.wrapping_neg();
                }
            }
        }
    });
}

#[test]
fn remainder_leaf_as_big_as_full_rejected() {
    // Condition 2: n_L^r < n_L.
    assert_rejected("remainder leaf grown to n_L", |shape| {
        if let Shape::ThreeLevel {
            n_l,
            l2_set,
            rem_tree: Some(rem),
            ..
        } = shape
        {
            if let Some((leaf, count, s_r)) = &mut rem.rem_leaf {
                let _ = leaf;
                *count = *n_l;
                *s_r = *l2_set;
            }
        }
    });
}

#[test]
fn duplicate_leaf_rejected() {
    assert_rejected("leaf in two trees", |shape| {
        if let Shape::ThreeLevel { trees, .. } = shape {
            let stolen = trees[0].leaves[0];
            // Also relocate it into the other tree's pod id space? The
            // checker must flag either the duplicate or the wrong pod.
            trees[1].leaves[0] = stolen;
        }
    });
}

#[test]
fn two_level_mutations_rejected() {
    let tree = FatTree::maximal(8).unwrap();
    let mut state = SystemState::new(tree);
    let mut jig = JigsawAllocator::new(&tree);
    let alloc = jig
        .try_admit(&mut state, &JobRequest::new(JobId(1), 11))
        .unwrap();
    let base = alloc.shape.clone();
    assert!(matches!(base, Shape::TwoLevel { .. }));
    check_shape(&tree, &base).unwrap();

    // Remainder as large as a full leaf.
    let mut s = base.clone();
    if let Shape::TwoLevel {
        n_l,
        l2_set,
        rem_leaf: Some((_, count, s_r)),
        ..
    } = &mut s
    {
        *count = *n_l;
        *s_r = *l2_set;
    }
    assert!(check_shape(&tree, &s).is_err());

    // Foreign-pod leaf.
    let mut s = base.clone();
    if let Shape::TwoLevel { pod, leaves, .. } = &mut s {
        let foreign_pod = (pod.0 + 1) % tree.num_pods();
        leaves[0] = tree.leaf_at(jigsaw_topology::ids::PodId(foreign_pod), 0);
    }
    assert!(check_shape(&tree, &s).is_err());

    // |S| too large for n_L.
    let mut s = base;
    if let Shape::TwoLevel { l2_set, .. } = &mut s {
        *l2_set = 0b1111;
    }
    // n_l of an 11-node two-level shape on this machine is 4 with S of 4
    // — if it already uses the full set, shrink instead.
    if check_shape(&tree, &s).is_ok() {
        if let Shape::TwoLevel { l2_set, .. } = &mut s {
            *l2_set = 0b1;
        }
        assert!(check_shape(&tree, &s).is_err());
    }
}

#[test]
fn checker_accepts_all_jigsaw_output_under_heavy_packing() {
    // Pack the machine with jobs of every residue class; every granted
    // shape must pass.
    let tree = FatTree::maximal(8).unwrap();
    let mut state = SystemState::new(tree);
    let mut jig = JigsawAllocator::new(&tree);
    let mut granted = 0;
    for i in 0.. {
        let size = 1 + (i * 11) % 23;
        match jig.try_admit(&mut state, &JobRequest::new(JobId(i), size)) {
            Ok(a) => {
                check_shape(&tree, &a.shape).unwrap();
                granted += 1;
            }
            Err(_) => break,
        }
    }
    assert!(granted > 5);
    // A leaf mutated into a different pod must be caught even on shapes
    // fresh from the allocator.
    let (tree, alloc) = figure3_allocation();
    let mut shape = alloc.shape;
    if let Shape::ThreeLevel { trees, .. } = &mut shape {
        trees[0].leaves[0] = LeafId(tree.num_leaves() - 1);
    }
    assert!(check_shape(&tree, &shape).is_err());
}
