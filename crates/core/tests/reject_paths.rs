//! Every [`Reject`] variant is reachable on a small machine — the typed
//! rejection API is only useful if each reason can actually be produced
//! (and therefore tested against) by a consumer.

use jigsaw_core::{JobRequest, LcsAllocator, Reject, Scheme, TaAllocator};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};

use jigsaw_core::Allocator;

/// Radix-4 maximal tree: 16 nodes, 4 pods × 2 leaves × 2 nodes.
fn small() -> FatTree {
    FatTree::maximal(4).unwrap()
}

#[test]
fn zero_size_from_every_scheme() {
    let tree = small();
    for kind in [
        Scheme::Jigsaw,
        Scheme::Baseline,
        Scheme::Laas,
        Scheme::Ta,
        Scheme::LcS,
    ] {
        let mut state = SystemState::new(tree);
        let mut alloc = kind.make(&tree);
        assert_eq!(
            alloc.allocate(&mut state, &JobRequest::new(JobId(1), 0)),
            Err(Reject::ZeroSize),
            "{} must reject a zero-size request",
            kind.name()
        );
    }
}

#[test]
fn no_nodes_reports_free_and_requested() {
    let tree = small();
    let mut state = SystemState::new(tree);
    let mut alloc = Scheme::Jigsaw.make(&tree);
    assert_eq!(
        alloc.allocate(&mut state, &JobRequest::new(JobId(1), 17)),
        Err(Reject::NoNodes {
            free: 16,
            requested: 17
        })
    );
}

#[test]
fn no_shape_under_fragmentation() {
    // One node claimed on every leaf: 8 nodes remain free, but no leaf is
    // fully free, so Jigsaw (full-leaf multi-leaf shapes) cannot place a
    // 4-node job — external fragmentation, not node shortage.
    let tree = small();
    let mut state = SystemState::new(tree);
    for leaf in tree.leaves() {
        state.claim_node(tree.node_at(leaf, 0), JobId(99));
    }
    let mut alloc = Scheme::Jigsaw.make(&tree);
    assert!(state.free_node_count() >= 4);
    assert_eq!(
        alloc.allocate(&mut state, &JobRequest::new(JobId(1), 4)),
        Err(Reject::NoShape)
    );
}

#[test]
fn no_links_when_bandwidth_saturated() {
    // LC+S is the one scheme with link-bandwidth caps. Saturate every
    // leaf uplink: a multi-leaf placement exists node-wise but no link
    // bandwidth is left.
    let tree = small();
    let mut state = SystemState::new(tree);
    for leaf in tree.leaves() {
        for pos in 0..tree.l2_per_pod() {
            assert!(state.try_reserve_leaf_link_bw(tree.leaf_link(leaf, pos), 40));
        }
    }
    let mut lcs = LcsAllocator::new(&tree);
    assert_eq!(
        lcs.allocate(&mut state, &JobRequest::with_bandwidth(JobId(1), 6, 5)),
        Err(Reject::NoLinks)
    );
}

#[test]
fn budget_exhausted_reports_steps_spent() {
    // Fragment a bigger machine so the fast paths miss, then hand LC+S a
    // 1-step search budget: it must give up with the steps it spent.
    let tree = FatTree::maximal(8).unwrap();
    let mut state = SystemState::new(tree);
    for leaf in tree.leaves() {
        state.claim_node(tree.node_at(leaf, 0), JobId(99));
    }
    let mut lcs = LcsAllocator::with_budget(&tree, 1, 1);
    match lcs.allocate(&mut state, &JobRequest::with_bandwidth(JobId(1), 60, 10)) {
        Err(Reject::BudgetExhausted { spent }) => assert!(spent >= 1),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn sharing_conflict_from_ta_class_rules() {
    // TA's class exclusivity: pod-class jobs hold their leaves. Place a
    // 3-node pod-class job in every pod; each pod keeps one free node,
    // but every leaf is now held by a pod job, so a 1-node leaf-class job
    // is blocked by the sharing rules — with 4 nodes demonstrably free.
    let tree = small();
    let mut state = SystemState::new(tree);
    let mut ta = TaAllocator::new(&tree);
    for (i, _) in tree.pods().enumerate() {
        ta.allocate(&mut state, &JobRequest::new(JobId(i as u32), 3))
            .expect("an empty pod fits a 3-node pod-class job");
    }
    assert_eq!(state.free_node_count(), 4);
    assert_eq!(
        ta.allocate(&mut state, &JobRequest::new(JobId(10), 1)),
        Err(Reject::SharingConflict)
    );
}
