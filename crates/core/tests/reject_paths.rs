//! Every [`RejectReason`] variant is reachable on a small machine — the
//! typed rejection API is only useful if each reason can actually be
//! produced (and therefore tested against) by a consumer. Alongside the
//! reason, each case checks the `would_fit_empty` fragmentation hint: the
//! hint separates "this machine is too fragmented right now" (a defrag
//! candidate) from "this request can never fit".

use jigsaw_core::{JobRequest, LcsAllocator, RejectReason, Scheme, TaAllocator};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};

use jigsaw_core::Allocator;

/// Radix-4 maximal tree: 16 nodes, 4 pods × 2 leaves × 2 nodes.
fn small() -> FatTree {
    FatTree::maximal(4).unwrap()
}

#[test]
fn zero_size_from_every_scheme() {
    let tree = small();
    for kind in [
        Scheme::Jigsaw,
        Scheme::Baseline,
        Scheme::Laas,
        Scheme::Ta,
        Scheme::LcS,
    ] {
        let mut state = SystemState::new(tree);
        let mut alloc = kind.make(&tree);
        let reject = alloc
            .try_admit(&mut state, &JobRequest::new(JobId(1), 0))
            .unwrap_err();
        assert_eq!(
            reject.reason,
            RejectReason::ZeroSize,
            "{} must reject a zero-size request",
            kind.name()
        );
        // A zero-size request fails on an empty machine too: never a
        // fragmentation reject.
        assert!(!reject.would_fit_empty, "{}", kind.name());
        assert!(!reject.is_fragmentation(), "{}", kind.name());
    }
}

#[test]
fn no_nodes_reports_free_and_requested() {
    let tree = small();
    let mut state = SystemState::new(tree);
    let mut alloc = Scheme::Jigsaw.make(&tree);
    let reject = alloc
        .try_admit(&mut state, &JobRequest::new(JobId(1), 17))
        .unwrap_err();
    assert_eq!(
        reject.reason,
        RejectReason::NoNodes {
            free: 16,
            requested: 17
        }
    );
    // Oversized for the machine itself: no migration can help.
    assert!(!reject.would_fit_empty);
}

#[test]
fn no_shape_under_fragmentation() {
    // One node claimed on every leaf: 8 nodes remain free, but no leaf is
    // fully free, so Jigsaw (full-leaf multi-leaf shapes) cannot place a
    // 4-node job — external fragmentation, not node shortage.
    let tree = small();
    let mut state = SystemState::new(tree);
    for leaf in tree.leaves() {
        state.claim_node(tree.node_at(leaf, 0), JobId(99));
    }
    let mut alloc = Scheme::Jigsaw.make(&tree);
    assert!(state.free_node_count() >= 4);
    let reject = alloc
        .try_admit(&mut state, &JobRequest::new(JobId(1), 4))
        .unwrap_err();
    assert_eq!(reject.reason, RejectReason::NoShape);
    // The 4-node job fits an empty machine: the textbook defrag candidate.
    assert!(reject.would_fit_empty);
    assert!(reject.is_fragmentation());
}

#[test]
fn no_links_when_bandwidth_saturated() {
    // LC+S is the one scheme with link-bandwidth caps. Saturate every
    // leaf uplink: a multi-leaf placement exists node-wise but no link
    // bandwidth is left.
    let tree = small();
    let mut state = SystemState::new(tree);
    for leaf in tree.leaves() {
        for pos in 0..tree.l2_per_pod() {
            assert!(state.try_reserve_leaf_link_bw(tree.leaf_link(leaf, pos), 40));
        }
    }
    let mut lcs = LcsAllocator::new(&tree);
    let reject = lcs
        .try_admit(&mut state, &JobRequest::with_bandwidth(JobId(1), 6, 5))
        .unwrap_err();
    assert_eq!(reject.reason, RejectReason::NoLinks);
    assert!(reject.is_fragmentation());
}

#[test]
fn budget_exhausted_reports_steps_spent() {
    // Fragment a bigger machine so the fast paths miss, then hand LC+S a
    // 1-step search budget: it must give up with the steps it spent.
    let tree = FatTree::maximal(8).unwrap();
    let mut state = SystemState::new(tree);
    for leaf in tree.leaves() {
        state.claim_node(tree.node_at(leaf, 0), JobId(99));
    }
    let mut lcs = LcsAllocator::with_budget(&tree, 1, 1);
    match lcs.try_admit(&mut state, &JobRequest::with_bandwidth(JobId(1), 60, 10)) {
        Err(reject) => {
            match reject.reason {
                RejectReason::BudgetExhausted { spent } => assert!(spent >= 1),
                other => panic!("expected BudgetExhausted, got {other:?}"),
            }
            // An empty machine satisfies the job within the unbudgeted
            // fast paths, so the hint marks this as reconfigurable.
            assert!(reject.would_fit_empty);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn sharing_conflict_from_ta_class_rules() {
    // TA's class exclusivity: pod-class jobs hold their leaves. Place a
    // 3-node pod-class job in every pod; each pod keeps one free node,
    // but every leaf is now held by a pod job, so a 1-node leaf-class job
    // is blocked by the sharing rules — with 4 nodes demonstrably free.
    let tree = small();
    let mut state = SystemState::new(tree);
    let mut ta = TaAllocator::new(&tree);
    for (i, _) in tree.pods().enumerate() {
        ta.try_admit(&mut state, &JobRequest::new(JobId(i as u32), 3))
            .expect("an empty pod fits a 3-node pod-class job");
    }
    assert_eq!(state.free_node_count(), 4);
    let reject = ta
        .try_admit(&mut state, &JobRequest::new(JobId(10), 1))
        .unwrap_err();
    assert_eq!(reject.reason, RejectReason::SharingConflict);
    assert!(reject.is_fragmentation());
}
