//! Property test: every migration plan the planner returns applies
//! cleanly and soundly on the state it was planned against, under either
//! search scheme.
//!
//! The planner promises ([`plan_migrations`]) that a returned plan was
//! fully executed on a scratch clone — evictions, re-placements, and the
//! triggering admission all through the real allocator — and audited
//! there. This test closes the loop on the REAL state: apply the plan
//! with [`Allocator::apply_plan`] (per-move release/adopt with a system
//! audit after every move) and check the post-state invariants for any
//! randomly fragmented machine:
//!
//! * the triggering job is admitted with exactly its requested size,
//! * the final schedule passes [`audit_system`] and the topology-level
//!   `assert_consistent`,
//! * every migrated job keeps its size (migration never resizes),
//! * the move count respects the configured bound,
//! * node accounting balances: applying a plan changes the allocated
//!   count by exactly the admitted size.
//!
//! Planning is also checked to be deterministic: the same inputs yield
//! the identical plan.

use jigsaw_core::defrag::{plan_migrations, DefragConfig, PlanScheme};
use jigsaw_core::{audit_system, Allocation, Allocator, JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};
use proptest::prelude::*;

/// Churn a radix-8 machine (128 nodes, 4-node leaves) with `sizes`, then
/// complete the jobs selected by `releases` to scatter holes.
fn fragmented_state(
    sizes: &[u32],
    releases: &[usize],
) -> (SystemState, Box<dyn Allocator>, Vec<Allocation>) {
    let tree = FatTree::maximal(8).unwrap();
    let mut state = SystemState::new(tree);
    let mut alloc = Scheme::Jigsaw.make(&tree);
    let mut live: Vec<Allocation> = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let id = JobId(jigsaw_topology::cast::count_u32(i));
        if let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(id, size)) {
            live.push(a);
        }
    }
    // Completions alone hand back leaf-aligned holes (Jigsaw placements
    // are leaf-aligned by construction), which a new job can re-use
    // outright. Fragment for real: backfill every completion with 1-node
    // fillers, then complete every other filler — free capacity ends up
    // scattered as sub-leaf holes across many leaves.
    let mut filler_id = 10_000u32;
    let mut fillers: Vec<Allocation> = Vec::new();
    for &r in releases {
        if live.is_empty() {
            break;
        }
        let done = live.swap_remove(r % live.len());
        alloc.release(&mut state, &done);
        alloc.recycle(done);
        while let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(JobId(filler_id), 1)) {
            fillers.push(a);
            filler_id += 1;
        }
    }
    for (i, a) in fillers.into_iter().enumerate() {
        if i % 2 == 0 {
            alloc.release(&mut state, &a);
            alloc.recycle(a);
        } else {
            live.push(a);
        }
    }
    (state, alloc, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn applied_plans_are_sound_under_both_schemes(
        sizes in prop::collection::vec(1u32..9, 48..96),
        releases in prop::collection::vec(0usize..64, 3..10),
        probe_size in 5u32..17,
    ) {
        let (state, alloc, live) = fragmented_state(&sizes, &releases);
        let req = JobRequest::new(JobId(9_999), probe_size);
        let probe = alloc.clone_box().try_admit(&mut state.clone(), &req);
        let reject = match probe {
            Ok(_) => return, // fits outright: nothing to plan
            Err(r) if !r.is_fragmentation() => return,
            Err(r) => r,
        };

        for scheme in [PlanScheme::Greedy, PlanScheme::Anneal { iters: 32, seed: 11 }] {
            let cfg = DefragConfig { scheme, ..DefragConfig::default() };
            let plan = plan_migrations(alloc.as_ref(), &state, &live, &req, reject, &cfg);
            // Planning must be deterministic: same inputs, same plan.
            let again = plan_migrations(alloc.as_ref(), &state, &live, &req, reject, &cfg);
            prop_assert_eq!(&plan, &again);
            let Some(plan) = plan else { continue };

            prop_assert!(plan.moves.len() <= cfg.max_moves);
            for m in &plan.moves {
                prop_assert_eq!(m.from.nodes.len(), m.to.nodes.len());
            }

            // Apply on clones of the REAL state (per-move audits inside).
            let mut state = state.clone();
            let mut alloc = alloc.clone_box();
            let mut live = live.clone();
            let before = state.allocated_node_count();
            let admitted = alloc
                .apply_plan(&mut state, &mut live, &plan)
                .expect("a plan applies cleanly to the state it was planned on");
            prop_assert_eq!(admitted.job, req.id);
            prop_assert_eq!(admitted.nodes.len() as u32, probe_size);
            prop_assert_eq!(state.allocated_node_count(), before + probe_size);

            state.assert_consistent();
            prop_assert!(audit_system(&state, &live).is_empty());
        }
    }
}
