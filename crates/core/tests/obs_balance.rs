//! Property test: the observability layer never drifts from the system
//! state it watches. For any sequence of allocate/release operations,
//! grants minus releases equals the number of live jobs, the
//! `nodes_in_use` gauge tracks the state's allocated-node count exactly,
//! and after everything is released the books balance to zero.

use jigsaw_core::{Allocation, Allocator, JobRequest, ObservedAllocator, Scheme};
use jigsaw_obs::Registry;
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};
use proptest::prelude::*;

const KINDS: [Scheme; 4] = [Scheme::Jigsaw, Scheme::Baseline, Scheme::Laas, Scheme::Ta];

/// Pull the total of a labeled counter family out of the rendered text —
/// the only view a monitoring system gets.
fn prometheus_total(text: &str, metric: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(metric) && (l.as_bytes().get(metric.len()) == Some(&b'{')))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counters_balance_and_gauge_tracks_state(
        // Each step: (selector, size, index). Selector < 3 allocates
        // `size` nodes; otherwise releases the live job at `index`.
        ops in prop::collection::vec((0u8..5, 1u32..=12, 0usize..16), 1..48),
        kind_idx in 0usize..4,
    ) {
        let kind = KINDS[kind_idx];
        let tree = FatTree::maximal(4).unwrap(); // 16 nodes
        let registry = Registry::new();
        let mut alloc = ObservedAllocator::new(kind.make(&tree), &registry);
        let mut state = SystemState::new(tree);
        let mut live: Vec<Allocation> = Vec::new();
        let mut next_id = 0u32;

        for &(sel, size, idx) in &ops {
            if sel < 3 {
                next_id += 1;
                if let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(JobId(next_id), size)) {
                    live.push(a);
                }
            } else if !live.is_empty() {
                let a = live.remove(idx % live.len());
                alloc.release(&mut state, &a);
            }
            // The gauge is exactly the state's allocated-node count, at
            // every intermediate point — not only at quiescence.
            prop_assert_eq!(
                alloc.obs().nodes_in_use().get(),
                i64::from(state.allocated_node_count())
            );
            prop_assert_eq!(
                alloc.obs().grants().get() - alloc.obs().releases().get(),
                live.len() as u64
            );
        }

        // Attempts partition into grants + rejects (observed through the
        // rendered exposition, like a scraper would).
        let text = registry.render_prometheus();
        prop_assert_eq!(
            prometheus_total(&text, "jigsaw_alloc_attempts_total"),
            prometheus_total(&text, "jigsaw_alloc_grants_total")
                + prometheus_total(&text, "jigsaw_alloc_rejects_total")
        );

        // Drain the session: the books balance to zero.
        for a in live.drain(..) {
            alloc.release(&mut state, &a);
        }
        prop_assert_eq!(alloc.obs().grants().get(), alloc.obs().releases().get());
        prop_assert_eq!(alloc.obs().nodes_in_use().get(), 0);
        prop_assert_eq!(state.free_node_count(), 16);
    }
}
