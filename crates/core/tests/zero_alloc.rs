//! Steady-state zero-allocation guarantee of the allocate hot path.
//!
//! The search scratch arena (`jigsaw_core::SearchScratch`) pools every
//! working vector of the placement searches, and `Allocator::recycle`
//! closes the cycle by dismantling spent allocations back into the pools.
//! After a warm-up period the pools hold buffers at steady-state capacity
//! and a full grant/release/recycle cycle must perform **zero** heap
//! allocations. This test installs a counting `GlobalAlloc` and asserts
//! exactly that for the pooled schemes (Jigsaw, Baseline, LaaS, LC+S).
//!
//! TA is exempt: its sharing-class bookkeeping (hash maps keyed by job)
//! is not on the single-digit-microsecond trajectory and stays heap-backed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use jigsaw_core::{Allocation, Allocator, JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};

/// Forwards to the system allocator, counting every allocation and
/// reallocation (frees are not counted: the guarantee is about acquiring
/// memory on the hot path, and a steady-state cycle that allocated nothing
/// has nothing of its own to free).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// jigsaw-lint: allow(R5) -- GlobalAlloc is an unsafe trait; this test-only shim forwards to System
unsafe impl GlobalAlloc for CountingAlloc {
    // jigsaw-lint: allow(R5) -- unsafe signature mandated by the GlobalAlloc trait
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // jigsaw-lint: allow(R5) -- direct forward to the system allocator
        unsafe { System.alloc(layout) }
    }

    // jigsaw-lint: allow(R5) -- unsafe signature mandated by the GlobalAlloc trait
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // jigsaw-lint: allow(R5) -- direct forward to the system allocator
        unsafe { System.dealloc(ptr, layout) }
    }

    // jigsaw-lint: allow(R5) -- unsafe signature mandated by the GlobalAlloc trait
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // jigsaw-lint: allow(R5) -- direct forward to the system allocator
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Heap allocations performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One full scheduling cycle: grant every size (ignoring rejects), then
/// release and recycle every grant. `granted` is pre-sized scratch owned by
/// the caller so the cycle itself never grows a vector.
fn cycle(
    alloc: &mut dyn Allocator,
    state: &mut SystemState,
    sizes: &[u32],
    granted: &mut Vec<Allocation>,
) {
    for (i, &size) in sizes.iter().enumerate() {
        if let Ok(g) = alloc.try_admit(state, &JobRequest::new(JobId(i as u32), size)) {
            granted.push(g);
        }
    }
    for g in granted.drain(..) {
        alloc.release(state, &g);
        alloc.recycle(g);
    }
}

/// A mix of shapes: single-leaf, two-level, three-level full, remainder
/// leaves, and sizes large enough to cross pods on the radix-16 tree
/// (1024 nodes, 8-node leaves, 8 leaves/pod).
const SIZES: [u32; 10] = [1, 5, 64, 130, 7, 48, 300, 2, 96, 17];

#[test]
fn steady_state_allocate_is_allocation_free() {
    let tree = FatTree::maximal(16).unwrap();
    // All tests share one process-wide counter, so everything runs inside
    // this single test function.
    for scheme in [Scheme::Jigsaw, Scheme::Baseline, Scheme::Laas, Scheme::LcS] {
        let mut state = SystemState::new(tree);
        let mut alloc = scheme.make(&tree);
        let mut granted: Vec<Allocation> = Vec::with_capacity(SIZES.len());
        // Warm-up: identical cycles fill every pool to its steady-state
        // capacity. Several rounds are needed because the pools are LIFO —
        // buffers shuffle between differently-sized jobs across cycles, and
        // each buffer must have seen the largest job it can be paired with
        // before growth stops. Capacities only ever grow, so the warm-up
        // converges.
        for _ in 0..10 {
            cycle(alloc.as_mut(), &mut state, &SIZES, &mut granted);
        }
        let n = allocations_during(|| {
            cycle(alloc.as_mut(), &mut state, &SIZES, &mut granted);
        });
        assert_eq!(
            n, 0,
            "{scheme}: steady-state grant/release/recycle cycle hit the heap {n} times"
        );
        state.assert_consistent();
    }
}

#[test]
fn fragmented_searches_are_allocation_free_once_warm() {
    // Fragmentation forces the searches down their backtracking paths
    // (candidate lists, per-pod solutions); those buffers must pool too.
    let tree = FatTree::maximal(16).unwrap();
    for scheme in [Scheme::Jigsaw, Scheme::LcS] {
        let mut state = SystemState::new(tree);
        // One node pinned on every even leaf: no contiguous full machine.
        for leaf in tree.leaves() {
            if leaf.0 % 2 == 0 {
                state.claim_node(tree.node_at(leaf, 0), JobId(9999));
            }
        }
        let mut alloc = scheme.make(&tree);
        let mut granted: Vec<Allocation> = Vec::with_capacity(SIZES.len());
        for _ in 0..10 {
            cycle(alloc.as_mut(), &mut state, &SIZES, &mut granted);
        }
        let n = allocations_during(|| {
            cycle(alloc.as_mut(), &mut state, &SIZES, &mut granted);
        });
        assert_eq!(
            n, 0,
            "{scheme}: fragmented steady-state cycle hit the heap {n} times"
        );
    }
}
