//! Property test: the word-parallel free-node masks select exactly the
//! nodes the old per-slot `is_node_free` scan selected.
//!
//! Every scheme's node selection used to walk leaf slots in ascending order
//! and pick free nodes first-fit. The mask rewrite (`count_ones` capacity
//! checks, `trailing_zeros` iteration) must be observationally identical:
//! on every leaf an allocation touches, the granted nodes are exactly the
//! first k free-by-scan nodes of that leaf in ascending slot order, for any
//! prior claim/release/offline history.

use std::collections::BTreeMap;

use jigsaw_core::{JobRequest, Scheme};
use jigsaw_topology::ids::{JobId, LeafId, NodeId};
use jigsaw_topology::{FatTree, SystemState};
use proptest::prelude::*;

/// The reference selection: ascending-slot first-fit over `is_node_free`,
/// exactly what the pre-mask code did.
fn scan_free_nodes(state: &SystemState, leaf: LeafId) -> Vec<NodeId> {
    let tree = state.tree();
    (0..tree.nodes_per_leaf())
        .map(|slot| tree.node_at(leaf, slot))
        .filter(|&n| state.is_node_free(n))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schemes_select_the_scan_first_fit_nodes(
        ops in prop::collection::vec((0u32..128, 0u8..3), 0..80),
        sizes in prop::collection::vec(1u32..40, 1..5),
    ) {
        let tree = FatTree::maximal(8).unwrap(); // 128 nodes, 4-node leaves
        for scheme in Scheme::ALL {
            let mut state = SystemState::new(tree);
            // Random history: foreign claims, releases, offline toggles.
            let mut owned: Vec<NodeId> = Vec::new();
            for &(k, op) in &ops {
                let node = NodeId(k % tree.num_nodes());
                match op {
                    0 => {
                        if state.is_node_free(node) {
                            state.claim_node(node, JobId(999));
                            owned.push(node);
                        }
                    }
                    1 => {
                        if let Some(n) = owned.pop() {
                            state.release_node(n);
                        }
                    }
                    _ => {
                        if state.is_node_offline(node) {
                            state.set_node_online(node);
                        } else if state.is_node_free(node) {
                            state.set_node_offline(node);
                        }
                    }
                }
            }
            let mut alloc = scheme.make(&tree);
            for (i, &size) in sizes.iter().enumerate() {
                let before = state.clone();
                let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(JobId(i as u32), size))
                else {
                    continue;
                };
                // Granted nodes, grouped per leaf in grant order.
                let mut per_leaf: BTreeMap<LeafId, Vec<NodeId>> = BTreeMap::new();
                for &n in &a.nodes {
                    per_leaf.entry(tree.leaf_of_node(n)).or_default().push(n);
                }
                for (leaf, picked) in per_leaf {
                    let scan = scan_free_nodes(&before, leaf);
                    prop_assert!(
                        scan.len() >= picked.len(),
                        "{scheme}: granted more nodes on leaf {leaf:?} than were free"
                    );
                    prop_assert_eq!(
                        &picked[..],
                        &scan[..picked.len()],
                        "{} picked different nodes than the per-slot scan on {:?}",
                        scheme,
                        leaf
                    );
                }
                state.assert_consistent();
            }
        }
    }
}
