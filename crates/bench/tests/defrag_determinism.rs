//! `--jobs N` must not change defrag outcomes.
//!
//! Every experiment binary fans its grid over a [`Pool`] sized by
//! `--jobs`. With the defragmenter in the scheduling loop, each cell now
//! computes and applies migration plans mid-simulation — so plan search
//! must be as deterministic as the allocator itself, or worker count
//! would leak into committed BENCH artifacts. This fans identical
//! defrag-enabled simulations across 1, 2, and 4 workers and requires
//! byte-identical serialized outcomes (wall-clock fields excluded; they
//! differ even between two sequential runs).

use jigsaw_bench::registry::trace_by_name;
use jigsaw_core::defrag::{DefragConfig, PlanScheme};
use jigsaw_core::Scheme;
use jigsaw_par::Pool;
use jigsaw_sim::{SimConfig, Simulation};

/// One grid cell: a defrag-enabled sim, serialized without wall-clock.
fn run_cell(trace_name: &str, scheme: PlanScheme, cost: f64) -> String {
    let (trace, tree) = trace_by_name(trace_name, 0.002, 5);
    let config = SimConfig {
        defrag: Some(DefragConfig {
            max_moves: 8,
            scheme,
        }),
        migration_cost_per_node: cost,
        ..SimConfig::default()
    };
    let result = Simulation::new(&tree, &trace)
        .scheme(Scheme::Jigsaw)
        .config(config)
        .run();
    format!(
        "trace={trace_name} migrations={} cost={} jobs={:?}",
        result.migrations, result.migration_cost, result.jobs
    )
}

#[test]
fn worker_count_does_not_change_defrag_results() {
    let t = "Oct-Cab";
    let cells: Vec<(String, PlanScheme, f64)> = vec![
        (t.to_string(), PlanScheme::Greedy, 0.0),
        (t.to_string(), PlanScheme::Greedy, 3.0),
        (
            t.to_string(),
            PlanScheme::Anneal {
                iters: 48,
                seed: 17,
            },
            3.0,
        ),
    ];

    let run = |pool: &Pool| -> Vec<String> {
        pool.map(cells.clone(), |_, (t, s, c)| run_cell(&t, s, c))
            .expect("no cell panics")
    };
    let seq = run(&Pool::sequential());
    let two = run(&Pool::new(2));
    let four = run(&Pool::new(4));
    assert!(
        seq.iter().any(|s| !s.contains("migrations=0")),
        "at least one cell must actually migrate, or this test is vacuous"
    );
    assert_eq!(seq, two, "2 workers changed defrag outcomes");
    assert_eq!(seq, four, "4 workers changed defrag outcomes");
}
