//! Allocation latency per scheme — the micro-benchmark behind Table 3.
//!
//! Measures one allocate+release cycle on (a) an empty machine and (b) a
//! machine churned to ~70% occupancy, on the paper's smallest and largest
//! clusters (radix 16 → 1024 nodes, radix 28 → 5488 nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_core::{Allocator, JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};
use std::hint::black_box;

/// Churn the machine to roughly `target` occupancy with a deterministic
/// mixed job stream.
fn churned(tree: &FatTree, scheme: Scheme, target: f64) -> (SystemState, Box<dyn Allocator>) {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let mut i = 0u32;
    while (state.allocated_node_count() as f64) < target * tree.num_nodes() as f64 {
        let size = 1 + (i * 13 + 7) % (tree.nodes_per_pod() / 2);
        let _ = alloc.try_admit(&mut state, &JobRequest::new(JobId(i), size));
        i += 1;
        if i > 4 * tree.num_nodes() {
            break; // scheme cannot reach the target; bench what we have
        }
    }
    (state, alloc)
}

fn bench_alloc(c: &mut Criterion) {
    for radix in [16u32, 28] {
        let tree = FatTree::maximal(radix).unwrap();
        let mut group = c.benchmark_group(format!("alloc_latency/radix{radix}"));
        for scheme in Scheme::ALL {
            // Empty machine, medium job (half a pod).
            let size = tree.nodes_per_pod() / 2;
            group.bench_with_input(
                BenchmarkId::new("empty", scheme.name()),
                &scheme,
                |b, &scheme| {
                    let mut state = SystemState::new(tree);
                    let mut alloc = scheme.make(&tree);
                    b.iter(|| {
                        let a = alloc
                            .try_admit(&mut state, &JobRequest::new(JobId(1), black_box(size)))
                            .expect("fits empty machine");
                        alloc.release(&mut state, &a);
                    });
                },
            );
            // Busy machine.
            group.bench_with_input(
                BenchmarkId::new("busy70", scheme.name()),
                &scheme,
                |b, &scheme| {
                    let (mut state, mut alloc) = churned(&tree, scheme, 0.7);
                    let size = tree.nodes_per_leaf() + 1;
                    b.iter(|| {
                        if let Ok(a) =
                            alloc.try_admit(&mut state, &JobRequest::new(JobId(1), black_box(size)))
                        {
                            alloc.release(&mut state, &a);
                        }
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
