//! Ablation bench (§4 of the paper): the cost of *not* restricting the
//! three-level search to full leaves. Compares the search effort of
//! Jigsaw's restricted placement search against the least-constrained
//! (LC+S) general search for the same job on the same fragmented machine —
//! the paper's reason why "being maximally permissive" is not just lower
//! utilization but also slower scheduling (Table 3: LC+S is 25–90×
//! slower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_core::{Allocator, JigsawAllocator, JobRequest, LcsAllocator};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};
use std::hint::black_box;

/// Fragment the machine: a spread of small jobs so no pod is clean.
fn fragmented(tree: &FatTree) -> SystemState {
    let mut state = SystemState::new(*tree);
    let mut jig = JigsawAllocator::new(tree);
    for i in 0..tree.num_leaves() {
        let size = 1 + i % (tree.nodes_per_leaf() - 1);
        let _ = jig.try_admit(&mut state, &JobRequest::new(JobId(i), size));
    }
    state
}

fn bench_restriction(c: &mut Criterion) {
    for radix in [16u32, 18] {
        let tree = FatTree::maximal(radix).unwrap();
        let state = fragmented(&tree);
        let size = tree.nodes_per_pod() + tree.nodes_per_leaf() + 1; // forces three-level
        let mut group = c.benchmark_group(format!("ablation_restriction/radix{radix}"));

        group.bench_function(BenchmarkId::new("jigsaw_restricted", size), |b| {
            let mut jig = JigsawAllocator::new(&tree);
            b.iter(|| black_box(jig.find_shape(&state, size)));
        });

        group.bench_function(BenchmarkId::new("least_constrained", size), |b| {
            let mut lcs = LcsAllocator::new(&tree);
            b.iter(|| black_box(lcs.find_shape(&state, size, 40)));
        });

        group.bench_function(BenchmarkId::new("lcs_with_sharing", size), |b| {
            let mut lcs = LcsAllocator::new(&tree);
            b.iter(|| black_box(lcs.find_shape(&state, size, 10)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_restriction);
criterion_main!(benches);
