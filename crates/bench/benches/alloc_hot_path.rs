//! Hot-path micro-benchmark for the index-guided candidate enumeration.
//!
//! The searches behind every scheme consult `SystemState`'s per-pod
//! min-free-spine-slots and max-free-leaf-nodes indices to skip exhausted
//! pods and leaves without touching any availability mask. This bench
//! exercises the regimes where those skips matter:
//!
//! * `fragmented` — the machine is churned to high occupancy so most pods
//!   fail the index checks and candidate enumeration is skip-dominated,
//! * `drained_pods` — all but one pod fully allocated; the search must
//!   reject P−1 pods per allocation attempt,
//! * `empty` — fresh machine, where the indices must not slow the search
//!   down (the no-regression guard for small trees).
//!
//! Radixes 10 (250 nodes) and 22 (2662 nodes) bracket the "no slower on
//! small trees, faster on radix-22+" acceptance criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_core::{Allocator, JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};
use std::hint::black_box;

/// Churn the machine to roughly `target` occupancy with a deterministic
/// mixed job stream (same stream as `alloc_latency`).
fn churned(tree: &FatTree, scheme: Scheme, target: f64) -> (SystemState, Box<dyn Allocator>) {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let mut i = 0u32;
    while (state.allocated_node_count() as f64) < target * tree.num_nodes() as f64 {
        let size = 1 + (i * 13 + 7) % (tree.nodes_per_pod() / 2);
        let _ = alloc.allocate(&mut state, &JobRequest::new(JobId(i), size));
        i += 1;
        if i > 4 * tree.num_nodes() {
            break;
        }
    }
    (state, alloc)
}

/// Allocate every pod except the last one wholesale, so candidate
/// enumeration faces a machine of exhausted pods.
fn drained(tree: &FatTree, scheme: Scheme) -> (SystemState, Box<dyn Allocator>) {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let pods = tree.num_pods();
    for i in 0..pods - 1 {
        let _ = alloc.allocate(&mut state, &JobRequest::new(JobId(i), tree.nodes_per_pod()));
    }
    (state, alloc)
}

fn bench_hot_path(c: &mut Criterion) {
    for radix in [10u32, 22] {
        let tree = FatTree::maximal(radix).unwrap();
        let mut group = c.benchmark_group(format!("alloc_hot_path/radix{radix}"));
        for scheme in [Scheme::Jigsaw, Scheme::LcS] {
            group.bench_with_input(
                BenchmarkId::new("empty", scheme.name()),
                &scheme,
                |b, &scheme| {
                    let mut state = SystemState::new(tree);
                    let mut alloc = scheme.make(&tree);
                    let size = tree.nodes_per_pod() / 2;
                    b.iter(|| {
                        let a = alloc
                            .allocate(&mut state, &JobRequest::new(JobId(1), black_box(size)))
                            .expect("fits empty machine");
                        alloc.release(&mut state, &a);
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("fragmented90", scheme.name()),
                &scheme,
                |b, &scheme| {
                    let (mut state, mut alloc) = churned(&tree, scheme, 0.9);
                    let size = tree.nodes_per_leaf() + 1;
                    b.iter(|| {
                        if let Ok(a) =
                            alloc.allocate(&mut state, &JobRequest::new(JobId(1), black_box(size)))
                        {
                            alloc.release(&mut state, &a);
                        }
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("drained_pods", scheme.name()),
                &scheme,
                |b, &scheme| {
                    let (mut state, mut alloc) = drained(&tree, scheme);
                    // One pod's worth still fits; the search must skip the
                    // P−1 drained pods to find it.
                    let size = tree.nodes_per_pod() / 2;
                    b.iter(|| {
                        if let Ok(a) =
                            alloc.allocate(&mut state, &JobRequest::new(JobId(1), black_box(size)))
                        {
                            alloc.release(&mut state, &a);
                        }
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
