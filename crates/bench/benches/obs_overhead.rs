//! Overhead of the observability layer on the allocation hot path.
//!
//! Three configurations of the same allocate+release cycle:
//!
//! * `raw`      — the bare scheme, no instrumentation at all,
//! * `disabled` — wrapped in `ObservedAllocator` with a disabled
//!   `Registry` (the production default when metrics are off): every
//!   handle is a null check, so this must sit within noise of `raw`,
//! * `enabled`  — a live `Registry` recording counters, latency and
//!   search-effort histograms, and the nodes-in-use gauge.
//!
//! CI runs this harness with `-- --test` (smoke mode: each routine runs
//! once) to keep it compiling and running without paying measurement time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_core::{Allocator, JobRequest, ObservedAllocator, Scheme};
use jigsaw_obs::Registry;
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};
use std::hint::black_box;

fn cycle(alloc: &mut dyn Allocator, state: &mut SystemState, size: u32) {
    let a = alloc
        .try_admit(state, &JobRequest::new(JobId(1), black_box(size)))
        .expect("fits empty machine");
    alloc.release(state, &a);
}

fn bench_obs_overhead(c: &mut Criterion) {
    let tree = FatTree::maximal(16).unwrap(); // the paper's 1024-node cluster
    let size = tree.nodes_per_pod() / 2;
    let mut group = c.benchmark_group("obs_overhead");

    for scheme in [Scheme::Jigsaw, Scheme::Baseline] {
        group.bench_with_input(
            BenchmarkId::new("raw", scheme.name()),
            &scheme,
            |b, &scheme| {
                let mut state = SystemState::new(tree);
                let mut alloc = scheme.make(&tree);
                b.iter(|| cycle(alloc.as_mut(), &mut state, size));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("disabled", scheme.name()),
            &scheme,
            |b, &scheme| {
                let mut state = SystemState::new(tree);
                let registry = Registry::disabled();
                let mut alloc = ObservedAllocator::new(scheme.make(&tree), &registry);
                b.iter(|| cycle(&mut alloc, &mut state, size));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("enabled", scheme.name()),
            &scheme,
            |b, &scheme| {
                let mut state = SystemState::new(tree);
                let registry = Registry::new();
                let mut alloc = ObservedAllocator::new(scheme.make(&tree), &registry);
                b.iter(|| cycle(&mut alloc, &mut state, size));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
