//! End-to-end simulator throughput per scheme: one full EASY-backfilled
//! simulation of a 400-job synthetic trace on the 1024-node cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_core::Scheme;
use jigsaw_sim::{SimConfig, Simulation};
use jigsaw_topology::FatTree;
use jigsaw_traces::synth::synth;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let tree = FatTree::maximal(16).unwrap();
    let trace = synth(16, 400, 42);
    let mut group = c.benchmark_group("sim_throughput/synth16_400jobs");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &s| {
                let config = SimConfig {
                    scheme_benefits: s != Scheme::Baseline,
                    ..SimConfig::default()
                };
                b.iter(|| {
                    black_box(
                        Simulation::new(&tree, &trace)
                            .scheme(s)
                            .config(config.clone())
                            .run(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
