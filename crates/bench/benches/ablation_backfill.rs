//! Ablation bench: EASY lookahead window size (the paper fixes 50,
//! §5.4.3). Measures full-simulation cost as the window widens — the
//! reservation/backfill machinery dominates scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_core::Scheme;
use jigsaw_sim::{SimConfig, Simulation};
use jigsaw_topology::FatTree;
use jigsaw_traces::synth::synth;
use std::hint::black_box;

fn bench_backfill(c: &mut Criterion) {
    let tree = FatTree::maximal(16).unwrap();
    let trace = synth(16, 300, 42);
    let mut group = c.benchmark_group("ablation_backfill/jigsaw_synth16_300jobs");
    group.sample_size(10);
    for window in [0usize, 10, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            let config = SimConfig {
                backfill_window: w,
                ..SimConfig::default()
            };
            b.iter(|| {
                black_box(
                    Simulation::new(&tree, &trace)
                        .scheme(Scheme::Jigsaw)
                        .config(config.clone())
                        .run(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backfill);
criterion_main!(benches);
