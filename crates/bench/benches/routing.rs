//! Routing-substrate micro-benchmarks: D-mod-k lookup, wraparound
//! partition routing, the constructive rearrangeable routing of Theorem 6,
//! and the max-flow bandwidth probe.

use criterion::{criterion_group, criterion_main, Criterion};
use jigsaw_core::{Allocator, JigsawAllocator, JobRequest};
use jigsaw_routing::dmodk::dmodk_route;
use jigsaw_routing::permutation::random_permutation;
use jigsaw_routing::verify::check_full_bandwidth;
use jigsaw_routing::{route_permutation, PartitionRouter};
use jigsaw_topology::ids::{JobId, NodeId};
use jigsaw_topology::{FatTree, SystemState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let tree = FatTree::maximal(16).unwrap();

    c.bench_function("routing/dmodk_route", |b| {
        let n = tree.num_nodes();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % n;
            black_box(dmodk_route(&tree, NodeId(i), NodeId((i * 31 + 5) % n)))
        });
    });

    // A mid-size three-level Jigsaw allocation.
    let mut state = SystemState::new(tree);
    let mut jig = JigsawAllocator::new(&tree);
    let alloc = jig
        .try_admit(&mut state, &JobRequest::new(JobId(1), 200))
        .expect("200 nodes fit 1024");

    c.bench_function("routing/partition_router_build", |b| {
        b.iter(|| black_box(PartitionRouter::new(&tree, &alloc).unwrap()));
    });

    c.bench_function("routing/partition_route", |b| {
        let router = PartitionRouter::new(&tree, &alloc).unwrap();
        let nodes = &alloc.nodes;
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % nodes.len();
            let j = (i * 13 + 1) % nodes.len();
            black_box(router.route(&tree, nodes[i], nodes[j]))
        });
    });

    c.bench_function("routing/rearrange_200_nodes", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let perm = random_permutation(&alloc.nodes, &mut rng);
        b.iter(|| black_box(route_permutation(&tree, &alloc, &perm).unwrap()));
    });

    c.bench_function("routing/maxflow_probe_200_nodes", |b| {
        b.iter(|| check_full_bandwidth(&tree, &alloc).unwrap());
    });
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
