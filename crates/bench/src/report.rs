//! Console tables, normalization helpers and JSON result output.

use crate::runner::GridResult;
use jigsaw_core::Scheme;
use jigsaw_sim::Scenario;
use std::fs;
use std::path::Path;

/// Write results as pretty JSON under `out_dir/name.json`.
pub fn write_json(out_dir: &str, name: &str, results: &[GridResult]) -> std::io::Result<()> {
    fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(results).expect("serializable"),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Find the result for (trace, scheme, scenario).
pub fn cell<'a>(
    results: &'a [GridResult],
    trace: &str,
    scheme: Scheme,
    scenario: Scenario,
) -> &'a GridResult {
    results
        .iter()
        .find(|r| r.trace == trace && r.scheme == scheme && r.scenario == scenario)
        .unwrap_or_else(|| panic!("missing cell ({trace}, {scheme}, {scenario})"))
}

/// Render a fixed-width table: header row + rows of (label, values).
pub fn table(title: &str, columns: &[&str], rows: &[(String, Vec<String>)]) -> String {
    let label_w = rows.iter().map(|(l, _)| l.len()).chain([10]).max().unwrap();
    let col_w = columns
        .iter()
        .map(|c| c.len())
        .chain(rows.iter().flat_map(|(_, vs)| vs.iter().map(|v| v.len())))
        .max()
        .unwrap()
        .max(8);
    let mut out = format!("## {title}\n\n{:<label_w$}", "");
    for c in columns {
        out.push_str(&format!(" {c:>col_w$}"));
    }
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:<label_w$}"));
        for v in values {
            out.push_str(&format!(" {v:>col_w$}"));
        }
        out.push('\n');
    }
    out
}

/// Format a fraction as `xx.x%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a ratio normalized to a baseline as `x.xx`.
pub fn norm(x: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "--".into()
    } else {
        format!("{:.2}", x / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(trace: &str, scheme: Scheme, scenario: Scenario) -> GridResult {
        GridResult {
            trace: trace.into(),
            scheme,
            scenario,
            utilization: 0.95,
            turnaround_all: 100.0,
            turnaround_large: 150.0,
            makespan: 1000.0,
            sched_time_per_job: 1e-5,
            unschedulable: 0,
            inst_util_buckets: [1, 2, 3, 4, 5, 6],
        }
    }

    #[test]
    fn cell_lookup() {
        let results = vec![
            fake("A", Scheme::Jigsaw, Scenario::None),
            fake("A", Scheme::Ta, Scenario::None),
        ];
        assert_eq!(
            cell(&results, "A", Scheme::Ta, Scenario::None).scheme,
            Scheme::Ta
        );
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        let results = vec![fake("A", Scheme::Jigsaw, Scenario::None)];
        let _ = cell(&results, "B", Scheme::Jigsaw, Scenario::None);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.954), "95.4%");
        assert_eq!(norm(150.0, 100.0), "1.50");
        assert_eq!(norm(1.0, 0.0), "--");
        let t = table(
            "T",
            &["c1", "c2"],
            &[("row".into(), vec!["1".into(), "2".into()])],
        );
        assert!(t.contains("## T") && t.contains("c1") && t.contains("row"));
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("jigsaw_bench_test");
        let results = vec![fake("A", Scheme::Jigsaw, Scenario::None)];
        write_json(dir.to_str().unwrap(), "test", &results).unwrap();
        let text = std::fs::read_to_string(dir.join("test.json")).unwrap();
        let back: Vec<GridResult> = serde_json::from_str(&text).unwrap();
        assert_eq!(back[0].trace, "A");
    }
}
