//! The nine traces of the evaluation and the clusters they run on
//! (§5.1 and §5.4.3 of the paper).

use jigsaw_topology::FatTree;
use jigsaw_traces::llnl::{atlas_model, cab_model, thunder_model, CabMonth};
use jigsaw_traces::synth::{synth, PAPER_JOBS};
use jigsaw_traces::workload::{dag_fanout, dag_pipeline, reserved_mix};
use jigsaw_traces::Trace;

/// One (trace, cluster) pairing of the evaluation.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Trace name as used in the paper.
    pub name: &'static str,
    /// Switch radix of the simulation cluster (§5.4.3: synthetic traces on
    /// matched clusters, LLNL traces on the 1458-node radix-18 cluster).
    pub radix: u32,
    /// Full (paper-scale) job count, for reference.
    pub full_jobs: usize,
}

/// All nine (trace, cluster) pairs, in Fig. 6's order.
pub const SPECS: [TraceSpec; 9] = [
    TraceSpec {
        name: "Synth-16",
        radix: 16,
        full_jobs: PAPER_JOBS,
    },
    TraceSpec {
        name: "Synth-22",
        radix: 22,
        full_jobs: PAPER_JOBS,
    },
    TraceSpec {
        name: "Synth-28",
        radix: 28,
        full_jobs: PAPER_JOBS,
    },
    TraceSpec {
        name: "Atlas",
        radix: 18,
        full_jobs: 29_700,
    },
    TraceSpec {
        name: "Thunder",
        radix: 18,
        full_jobs: 105_764,
    },
    TraceSpec {
        name: "Aug-Cab",
        radix: 18,
        full_jobs: 30_691,
    },
    TraceSpec {
        name: "Sep-Cab",
        radix: 18,
        full_jobs: 87_564,
    },
    TraceSpec {
        name: "Oct-Cab",
        radix: 18,
        full_jobs: 125_228,
    },
    TraceSpec {
        name: "Nov-Cab",
        radix: 18,
        full_jobs: 50_353,
    },
];

/// The workload-model-v2 scenarios (DESIGN §13): DAG-structured and
/// reservation-bearing traces on the Synth-16 cluster. These are *not*
/// part of [`SPECS`] — the paper never evaluated them — but
/// [`trace_by_name`] resolves them so every harness can run them.
pub const WORKLOAD_V2: [&str; 3] = ["dag_pipeline", "dag_fanout", "reserved_mix"];

/// Generate the named trace at `scale` and pair it with its cluster.
/// Resolves the nine paper traces of [`SPECS`] plus the [`WORKLOAD_V2`]
/// scenarios.
///
/// # Panics
/// On an unknown trace name.
pub fn trace_by_name(name: &str, scale: f64, seed: u64) -> (Trace, FatTree) {
    let n_synth = ((PAPER_JOBS as f64) * scale).round().max(1.0) as usize;
    if WORKLOAD_V2.contains(&name) {
        let tree = FatTree::maximal(16).expect("radix 16 is valid");
        let trace = match name {
            "dag_pipeline" => dag_pipeline(16, n_synth, seed + 9),
            "dag_fanout" => dag_fanout(16, n_synth, seed + 10),
            "reserved_mix" => reserved_mix(16, n_synth, seed + 11),
            _ => unreachable!(),
        };
        return (trace, tree);
    }
    let spec = SPECS
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown trace {name}"));
    let tree = FatTree::maximal(spec.radix).expect("registry radixes are valid");
    let trace = match name {
        "Synth-16" => synth(16, n_synth, seed),
        "Synth-22" => synth(22, n_synth, seed + 1),
        "Synth-28" => synth(28, n_synth, seed + 2),
        "Thunder" => thunder_model().generate(scale, seed + 3),
        "Atlas" => atlas_model().generate(scale, seed + 4),
        "Aug-Cab" => cab_model(CabMonth::Aug).generate(scale, seed + 5),
        "Sep-Cab" => cab_model(CabMonth::Sep).generate(scale, seed + 6),
        "Oct-Cab" => cab_model(CabMonth::Oct).generate(scale, seed + 7),
        "Nov-Cab" => cab_model(CabMonth::Nov).generate(scale, seed + 8),
        _ => unreachable!(),
    };
    (trace, tree)
}

/// All nine traces at `scale`.
pub fn paper_traces(scale: f64, seed: u64) -> Vec<(Trace, FatTree)> {
    SPECS
        .iter()
        .map(|s| trace_by_name(s.name, scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_nine_traces() {
        let all = paper_traces(0.002, 1);
        assert_eq!(all.len(), 9);
        let names: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
        assert!(names.contains(&"Oct-Cab") && names.contains(&"Synth-28"));
    }

    #[test]
    fn clusters_match_section_543() {
        let (_, tree) = trace_by_name("Synth-28", 0.001, 1);
        assert_eq!(tree.num_nodes(), 5488);
        let (_, tree) = trace_by_name("Thunder", 0.001, 1);
        assert_eq!(tree.num_nodes(), 1458);
        let (t, tree) = trace_by_name("Atlas", 0.001, 1);
        assert_eq!(tree.num_nodes(), 1458);
        assert!(t.max_size() <= tree.num_nodes());
    }

    #[test]
    #[should_panic(expected = "unknown trace")]
    fn unknown_name_panics() {
        let _ = trace_by_name("NotATrace", 0.01, 1);
    }
}
