//! Parallel experiment execution over (trace × scheme × scenario) grids.
//!
//! Cells fan out across a [`Pool`]'s workers and come back in submission
//! order, so reports built from the results are byte-identical whatever
//! `--jobs` says. A cell that panics mid-simulation surfaces as a
//! [`CellFailure`] naming the cell, instead of unwinding through a report
//! writer with a half-written JSON file on disk.

use jigsaw_core::Scheme;
use jigsaw_par::Pool;
use jigsaw_sim::{Scenario, SimConfig, SimResult, Simulation};
use jigsaw_topology::FatTree;
use jigsaw_traces::Trace;
use serde::{Deserialize, Serialize};

/// One cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Trace name (looked up in the registry by the caller).
    pub trace: String,
    /// Scheduling scheme.
    pub scheme: Scheme,
    /// Speed-up scenario.
    pub scenario: Scenario,
}

/// A completed cell: the cell plus headline metrics (the full `SimResult`
/// is kept for table/figure extraction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Trace name.
    pub trace: String,
    /// Scheduling scheme (serialized as its paper label).
    pub scheme: Scheme,
    /// Speed-up scenario (serialized as its figure label).
    pub scenario: Scenario,
    /// Steady-state utilization.
    pub utilization: f64,
    /// Average turnaround, all jobs.
    pub turnaround_all: f64,
    /// Average turnaround, jobs > 100 nodes.
    pub turnaround_large: f64,
    /// Makespan.
    pub makespan: f64,
    /// Average scheduling wall time per job (seconds).
    pub sched_time_per_job: f64,
    /// Jobs dropped as unschedulable.
    pub unschedulable: u32,
    /// Instantaneous-utilization buckets (Table 2), when collected.
    pub inst_util_buckets: [u64; 6],
}

impl GridResult {
    fn from(cell: &GridCell, r: &SimResult) -> Self {
        GridResult {
            trace: cell.trace.clone(),
            scheme: cell.scheme,
            scenario: cell.scenario,
            utilization: r.utilization,
            turnaround_all: r.avg_turnaround(),
            turnaround_large: r.avg_turnaround_large(100),
            makespan: r.makespan,
            sched_time_per_job: r.avg_sched_time_per_job(),
            unschedulable: r.unschedulable,
            inst_util_buckets: r.inst_util.buckets,
        }
    }
}

/// A grid cell that died, named so harness binaries can report it and
/// exit nonzero.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Trace name of the failing cell.
    pub trace: String,
    /// Scheme of the failing cell.
    pub scheme: Scheme,
    /// Scenario of the failing cell.
    pub scenario: Scenario,
    /// The contained panic message.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grid cell ({}, {}, {}) failed: {}",
            self.trace, self.scheme, self.scenario, self.message
        )
    }
}

impl std::error::Error for CellFailure {}

/// Run every cell of the grid on `pool`. `traces` resolves a trace name to
/// its (trace, cluster) pair — generation happens once per trace up front,
/// not per cell. Results are in the cells' submission order; the first
/// failing cell (in that order) is returned instead.
pub fn run_grid(
    pool: &Pool,
    cells: &[GridCell],
    traces: &[(Trace, FatTree)],
    scenario_seed: u64,
    collect_inst_util: bool,
) -> Result<Vec<GridResult>, CellFailure> {
    let outcomes = pool.run(cells.to_vec(), |_, cell| {
        let (trace, tree) = traces
            .iter()
            .find(|(t, _)| t.name == cell.trace)
            .unwrap_or_else(|| panic!("trace {} not generated", cell.trace));
        let config = SimConfig {
            scenario: cell.scenario,
            scenario_seed,
            scheme_benefits: cell.scheme.benefits_from_isolation(),
            collect_inst_util,
            ..SimConfig::default()
        };
        let result = Simulation::new(tree, trace)
            .scheme(cell.scheme)
            .config(config)
            .run();
        GridResult::from(&cell, &result)
    });
    outcomes
        .into_iter()
        .map(|outcome| {
            outcome.map_err(|tp| {
                let cell = &cells[tp.index];
                CellFailure {
                    trace: cell.trace.clone(),
                    scheme: cell.scheme,
                    scenario: cell.scenario,
                    message: tp.message,
                }
            })
        })
        .collect()
}

/// [`run_grid`] with the shared harness-binary failure policy: print the
/// failing cell to stderr and exit nonzero, never unwind.
pub fn run_grid_or_exit(
    pool: &Pool,
    cells: &[GridCell],
    traces: &[(Trace, FatTree)],
    scenario_seed: u64,
    collect_inst_util: bool,
) -> Vec<GridResult> {
    match run_grid(pool, cells, traces, scenario_seed, collect_inst_util) {
        Ok(results) => results,
        Err(failure) => {
            eprintln!("error: {failure}");
            std::process::exit(1);
        }
    }
}

/// Convenience: the full scheme × scenario product for a set of traces.
pub fn product(traces: &[&str], schemes: &[Scheme], scenarios: &[Scenario]) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for &trace in traces {
        for &scheme in schemes {
            for &scenario in scenarios {
                cells.push(GridCell {
                    trace: trace.into(),
                    scheme,
                    scenario,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::trace_by_name;

    #[test]
    fn grid_runs_in_parallel_and_is_complete() {
        let traces = vec![trace_by_name("Synth-16", 0.005, 3)];
        let cells = product(
            &["Synth-16"],
            &[Scheme::Baseline, Scheme::Jigsaw],
            &[Scenario::None, Scenario::Fixed(10)],
        );
        let results = run_grid(&Pool::new(4), &cells, &traces, 7, false).expect("grid runs");
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.utilization > 0.0));
        // Scenario does not change Baseline.
        let base: Vec<&GridResult> = results
            .iter()
            .filter(|r| r.scheme == Scheme::Baseline)
            .collect();
        assert_eq!(base[0].makespan, base[1].makespan);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let traces = vec![trace_by_name("Synth-16", 0.005, 3)];
        let cells = product(
            &["Synth-16"],
            &[Scheme::Baseline, Scheme::Jigsaw, Scheme::LcS],
            &[Scenario::None],
        );
        let mut seq = run_grid(&Pool::sequential(), &cells, &traces, 7, false).expect("seq");
        let mut par = run_grid(&Pool::new(3), &cells, &traces, 7, false).expect("par");
        // Scheduling time is measured wall clock — the one field that
        // differs even between two sequential runs. Everything else must
        // serialize byte-identically whatever the worker count.
        for r in seq.iter_mut().chain(par.iter_mut()) {
            r.sched_time_per_job = 0.0;
        }
        let seq_json = serde_json::to_string(&seq).expect("serialize");
        let par_json = serde_json::to_string(&par).expect("serialize");
        assert_eq!(seq_json, par_json);
    }

    #[test]
    fn v2_workloads_are_deterministic_across_worker_counts() {
        // The workload-model-v2 scenarios (DAG gating, advance
        // reservations) exercise scheduler paths the rigid traces never
        // touch; their reports must still be byte-identical whatever
        // `--jobs` says.
        let traces: Vec<_> = crate::registry::WORKLOAD_V2
            .iter()
            .map(|name| trace_by_name(name, 0.005, 3))
            .collect();
        let names: Vec<&str> = traces.iter().map(|(t, _)| t.name.as_str()).collect();
        let cells = product(
            &names,
            &[Scheme::Baseline, Scheme::Jigsaw],
            &[Scenario::None],
        );
        let mut seq = run_grid(&Pool::sequential(), &cells, &traces, 7, false).expect("seq");
        let mut par = run_grid(&Pool::new(3), &cells, &traces, 7, false).expect("par");
        for r in seq.iter_mut().chain(par.iter_mut()) {
            r.sched_time_per_job = 0.0; // wall clock, never deterministic
        }
        let seq_json = serde_json::to_string(&seq).expect("serialize");
        let par_json = serde_json::to_string(&par).expect("serialize");
        assert_eq!(seq_json, par_json);
    }

    #[test]
    fn missing_trace_is_a_named_failure() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let traces = vec![trace_by_name("Synth-16", 0.005, 3)];
        let cells = product(&["Nope"], &[Scheme::Jigsaw], &[Scenario::None]);
        let err =
            run_grid(&Pool::new(2), &cells, &traces, 7, false).expect_err("unknown trace fails");
        std::panic::set_hook(prev_hook);
        assert_eq!(err.trace, "Nope");
        assert_eq!(err.scheme, Scheme::Jigsaw);
        assert!(err.to_string().contains("not generated"), "{err}");
    }
}
