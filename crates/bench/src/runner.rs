//! Parallel experiment execution over (trace × scheme × scenario) grids.

use jigsaw_core::SchedulerKind;
use jigsaw_sim::{simulate, Scenario, SimConfig, SimResult};
use jigsaw_topology::FatTree;
use jigsaw_traces::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Trace name (looked up in the registry by the caller).
    pub trace: String,
    /// Scheduling scheme.
    pub scheme: SchedulerKind,
    /// Speed-up scenario.
    pub scenario: Scenario,
}

/// A completed cell: the cell plus headline metrics (the full `SimResult`
/// is kept for table/figure extraction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Trace name.
    pub trace: String,
    /// Scheme name.
    pub scheme: String,
    /// Scenario label.
    pub scenario: String,
    /// Steady-state utilization.
    pub utilization: f64,
    /// Average turnaround, all jobs.
    pub turnaround_all: f64,
    /// Average turnaround, jobs > 100 nodes.
    pub turnaround_large: f64,
    /// Makespan.
    pub makespan: f64,
    /// Average scheduling wall time per job (seconds).
    pub sched_time_per_job: f64,
    /// Jobs dropped as unschedulable.
    pub unschedulable: u32,
    /// Instantaneous-utilization buckets (Table 2), when collected.
    pub inst_util_buckets: [u64; 6],
}

impl GridResult {
    fn from(cell: &GridCell, r: &SimResult) -> Self {
        GridResult {
            trace: cell.trace.clone(),
            scheme: cell.scheme.name().to_string(),
            scenario: cell.scenario.label(),
            utilization: r.utilization,
            turnaround_all: r.avg_turnaround(),
            turnaround_large: r.avg_turnaround_large(100),
            makespan: r.makespan,
            sched_time_per_job: r.avg_sched_time_per_job(),
            unschedulable: r.unschedulable,
            inst_util_buckets: r.inst_util.buckets,
        }
    }
}

/// Run every cell of the grid in parallel. `lookup` resolves a trace name
/// to its (trace, cluster) pair — generation happens once per trace up
/// front, not per cell.
pub fn run_grid(
    cells: &[GridCell],
    traces: &[(Trace, FatTree)],
    scenario_seed: u64,
    collect_inst_util: bool,
) -> Vec<GridResult> {
    cells
        .par_iter()
        .map(|cell| {
            let (trace, tree) = traces
                .iter()
                .find(|(t, _)| t.name == cell.trace)
                .unwrap_or_else(|| panic!("trace {} not generated", cell.trace));
            let config = SimConfig {
                scenario: cell.scenario,
                scenario_seed,
                scheme_benefits: cell.scheme != SchedulerKind::Baseline,
                collect_inst_util,
                ..SimConfig::default()
            };
            let result = simulate(tree, cell.scheme.make(tree), trace, &config);
            GridResult::from(cell, &result)
        })
        .collect()
}

/// Convenience: the full scheme × scenario product for a set of traces.
pub fn product(
    traces: &[&str],
    schemes: &[SchedulerKind],
    scenarios: &[Scenario],
) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for &trace in traces {
        for &scheme in schemes {
            for &scenario in scenarios {
                cells.push(GridCell {
                    trace: trace.into(),
                    scheme,
                    scenario,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::trace_by_name;

    #[test]
    fn grid_runs_in_parallel_and_is_complete() {
        let traces = vec![trace_by_name("Synth-16", 0.005, 3)];
        let cells = product(
            &["Synth-16"],
            &[SchedulerKind::Baseline, SchedulerKind::Jigsaw],
            &[Scenario::None, Scenario::Fixed(10)],
        );
        let results = run_grid(&cells, &traces, 7, false);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.utilization > 0.0));
        // Scenario does not change Baseline.
        let base: Vec<&GridResult> = results.iter().filter(|r| r.scheme == "Baseline").collect();
        assert_eq!(base[0].makespan, base[1].makespan);
    }
}
