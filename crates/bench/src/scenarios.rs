//! Shared machine-occupancy scenarios for the allocation benchmarks.
//!
//! Both the Criterion micro-benchmark (`benches/alloc_hot_path.rs`) and the
//! committed perf-trajectory binary (`alloc_trajectory`) measure the same
//! three regimes, so the setup lives here once:
//!
//! * `empty` — fresh machine: the fast path must stay fast on small trees,
//! * `fragmented90` — churned to ~90% occupancy with a deterministic mixed
//!   job stream: candidate enumeration is skip-dominated,
//! * `drained_pods` — every pod but the last fully allocated: the search
//!   rejects P−1 pods per attempt.

use jigsaw_core::{Allocator, JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};

/// Churn the machine to roughly `target` occupancy with a deterministic
/// mixed job stream (same stream as the `alloc_latency` bench).
pub fn churned(tree: &FatTree, scheme: Scheme, target: f64) -> (SystemState, Box<dyn Allocator>) {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let mut i = 0u32;
    while (state.allocated_node_count() as f64) < target * f64::from(tree.num_nodes()) {
        let size = 1 + (i * 13 + 7) % (tree.nodes_per_pod() / 2);
        // jigsaw-lint: allow(R10) -- setup churn: the occupancy left in `state` is the product; rejects carry no buffers
        let _ = alloc.allocate(&mut state, &JobRequest::new(JobId(i), size));
        i += 1;
        if i > 4 * tree.num_nodes() {
            break;
        }
    }
    (state, alloc)
}

/// Allocate every pod except the last one wholesale, so candidate
/// enumeration faces a machine of exhausted pods.
pub fn drained(tree: &FatTree, scheme: Scheme) -> (SystemState, Box<dyn Allocator>) {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let pods = tree.num_pods();
    for i in 0..pods - 1 {
        // jigsaw-lint: allow(R10) -- one-time pod-draining setup: the claims in `state` are the product
        let _ = alloc.allocate(&mut state, &JobRequest::new(JobId(i), tree.nodes_per_pod()));
    }
    (state, alloc)
}

/// The three benchmark regimes, with their prepared state and probe size.
pub fn scenario(
    name: &str,
    tree: &FatTree,
    scheme: Scheme,
) -> (SystemState, Box<dyn Allocator>, u32) {
    match name {
        "empty" => {
            let state = SystemState::new(*tree);
            (state, scheme.make(tree), tree.nodes_per_pod() / 2)
        }
        "fragmented90" => {
            let (state, alloc) = churned(tree, scheme, 0.9);
            (state, alloc, tree.nodes_per_leaf() + 1)
        }
        "drained_pods" => {
            let (state, alloc) = drained(tree, scheme);
            // One pod's worth still fits; the search must skip the P−1
            // drained pods to find it.
            (state, alloc, tree.nodes_per_pod() / 2)
        }
        other => panic!("unknown scenario `{other}`"),
    }
}

/// Scenario names in reporting order.
pub const SCENARIOS: [&str; 3] = ["empty", "fragmented90", "drained_pods"];
