//! Shared machine-occupancy scenarios for the allocation benchmarks.
//!
//! The Criterion micro-benchmark (`benches/alloc_hot_path.rs`) and the
//! committed perf-trajectory binaries (`alloc_trajectory`,
//! `defrag_recovery`) measure the same three regimes, so the setup lives
//! here once:
//!
//! * `empty` — fresh machine: the fast path must stay fast on small trees,
//! * `fragmented90` — churned to ~90% occupancy with a deterministic mixed
//!   job stream: candidate enumeration is skip-dominated,
//! * `drained_pods` — every pod but the last fully allocated: the search
//!   rejects P−1 pods per attempt.
//!
//! Every builder returns the **live allocation set** alongside the state
//! and allocator: the defragmentation planner ([`jigsaw_core::defrag`])
//! needs the resident placements to compute migration plans, and the
//! system audit needs them to prove a scenario state is coherent.

use jigsaw_core::{Allocation, Allocator, JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::{FatTree, SystemState};

/// A prepared occupancy regime: the machine state, the allocator that
/// produced it, and every allocation still resident.
pub type PreparedState = (SystemState, Box<dyn Allocator>, Vec<Allocation>);

/// Churn the machine to roughly `target` occupancy with a deterministic
/// mixed job stream (same stream as the `alloc_latency` bench).
pub fn churned(tree: &FatTree, scheme: Scheme, target: f64) -> PreparedState {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let mut live = Vec::new();
    let mut i = 0u32;
    while (state.allocated_node_count() as f64) < target * f64::from(tree.num_nodes()) {
        let size = 1 + (i * 13 + 7) % (tree.nodes_per_pod() / 2);
        if let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(JobId(i), size)) {
            live.push(a);
        }
        i += 1;
        if i > 4 * tree.num_nodes() {
            break;
        }
    }
    (state, alloc, live)
}

/// Allocate every pod except the last one wholesale, so candidate
/// enumeration faces a machine of exhausted pods.
pub fn drained(tree: &FatTree, scheme: Scheme) -> PreparedState {
    let mut state = SystemState::new(*tree);
    let mut alloc = scheme.make(tree);
    let mut live = Vec::new();
    let pods = tree.num_pods();
    for i in 0..pods - 1 {
        if let Ok(a) = alloc.try_admit(&mut state, &JobRequest::new(JobId(i), tree.nodes_per_pod()))
        {
            live.push(a);
        }
    }
    (state, alloc, live)
}

/// The three benchmark regimes, with their prepared state and probe size.
pub fn scenario(
    name: &str,
    tree: &FatTree,
    scheme: Scheme,
) -> (SystemState, Box<dyn Allocator>, Vec<Allocation>, u32) {
    match name {
        "empty" => {
            let state = SystemState::new(*tree);
            (
                state,
                scheme.make(tree),
                Vec::new(),
                tree.nodes_per_pod() / 2,
            )
        }
        "fragmented90" => {
            let (state, alloc, live) = churned(tree, scheme, 0.9);
            (state, alloc, live, tree.nodes_per_leaf() + 1)
        }
        "drained_pods" => {
            let (state, alloc, live) = drained(tree, scheme);
            // One pod's worth still fits; the search must skip the P−1
            // drained pods to find it.
            (state, alloc, live, tree.nodes_per_pod() / 2)
        }
        other => panic!("unknown scenario `{other}`"),
    }
}

/// Scenario names in reporting order.
pub const SCENARIOS: [&str; 3] = ["empty", "fragmented90", "drained_pods"];
