//! Regenerate **Table 3**: average scheduling time per job for four
//! representative experiments, smallest to largest cluster.
//!
//! Paper shape to reproduce: TA/LaaS/Jigsaw within the same order of
//! magnitude of each other on every cluster (milliseconds in the paper's
//! C++ on 2021 hardware; microseconds here), LC+S one to two orders of
//! magnitude slower and degrading with cluster size (255 ms at 5488 nodes
//! in the paper).
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin table3_schedtime [--scale f]
//! ```

use jigsaw_bench::report::{cell, table, write_json};
use jigsaw_bench::runner::{product, run_grid_or_exit};
use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::Scenario;

fn main() {
    let args = HarnessArgs::parse();
    // Smallest to largest cluster (1024, 1296, 1458, 5488 nodes).
    let trace_names = ["Synth-16", "Sep-Cab", "Thunder", "Synth-28"];
    eprintln!("generating traces at scale {} ...", args.scale);
    let traces: Vec<_> = trace_names
        .iter()
        .map(|n| trace_by_name(n, args.scale, args.seed))
        .collect();
    let schemes = [Scheme::Ta, Scheme::Laas, Scheme::Jigsaw, Scheme::LcS];
    let cells = product(&trace_names, &schemes, &[Scenario::None]);
    eprintln!("running {} simulations ...", cells.len());
    let results = run_grid_or_exit(&args.pool(), &cells, &traces, args.seed, false);

    let rows: Vec<(String, Vec<String>)> = schemes
        .iter()
        .map(|&k| {
            let values = trace_names
                .iter()
                .map(|t| {
                    let r = cell(&results, t, k, Scenario::None);
                    format!("{:.5}", r.sched_time_per_job)
                })
                .collect();
            (k.name().to_string(), values)
        })
        .collect();
    println!(
        "{}",
        table(
            "Table 3 — average scheduling time per job (seconds)",
            &trace_names,
            &rows
        )
    );
    write_json(&args.out_dir, "table3_schedtime", &results).expect("write results");
}
