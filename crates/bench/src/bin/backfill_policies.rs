//! Extension experiment: backfilling disciplines under Jigsaw.
//!
//! The paper fixes EASY with window 50 (§5.3/§5.4.3). This experiment
//! quantifies that choice: strict FIFO vs. EASY vs. conservative
//! backfilling, on one heavy synthetic trace, under the Jigsaw allocator.
//! Expected shape: FIFO craters utilization (head-of-line blocking on a
//! job-isolating scheduler is brutal); EASY recovers it; conservative sits
//! between on utilization but pays 10–100× the scheduling cost and gives
//! every job a no-delay guarantee (lower wait-time tail).
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin backfill_policies [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::{BackfillPolicy, SimConfig, Simulation};

fn main() {
    let args = HarnessArgs::parse();
    // Conservative is O(depth × events × machine) per pass — use a
    // fraction of the requested scale so the comparison stays quick.
    let scale = (args.scale * 0.4).max(0.002);
    let (trace, tree) = trace_by_name("Synth-16", scale, args.seed);
    eprintln!("trace: {} jobs on {} nodes", trace.len(), tree.num_nodes());

    let policies = [
        ("FIFO", BackfillPolicy::None),
        ("EASY", BackfillPolicy::Easy),
        ("conservative", BackfillPolicy::Conservative),
    ];
    let results = match args.pool().map(policies.to_vec(), |_, (_, policy)| {
        let config = SimConfig {
            policy,
            ..SimConfig::default()
        };
        Simulation::new(&tree, &trace)
            .scheme(Scheme::Jigsaw)
            .config(config)
            .run()
    }) {
        Ok(r) => r,
        Err(tp) => {
            eprintln!(
                "error: policy `{}` failed: {}",
                policies[tp.index].0, tp.message
            );
            std::process::exit(1);
        }
    };

    println!("## Backfilling disciplines under Jigsaw\n");
    println!(
        "{:<14} {:>11} {:>14} {:>12} {:>12} {:>14}",
        "policy", "utilization", "avg turnaround", "p95 wait", "makespan", "sched µs/job"
    );
    for ((name, _), r) in policies.iter().zip(&results) {
        println!(
            "{:<14} {:>10.1}% {:>14.0} {:>12.0} {:>12.0} {:>14.1}",
            name,
            100.0 * r.utilization,
            r.avg_turnaround(),
            r.wait_quantile(0.95),
            r.makespan,
            1e6 * r.avg_sched_time_per_job(),
        );
    }
    println!(
        "\nEASY (the paper's choice) should dominate FIFO on every metric and\n\
         match or beat conservative on utilization at a fraction of the cost."
    );
}
