//! Regenerate **Figure 6**: average steady-state system utilization for
//! all five scheduling approaches on all nine traces.
//!
//! Paper shape to reproduce: Baseline 97–100%, LC+S ≈ Jigsaw 93–96%,
//! LaaS below both (internal fragmentation), TA lowest (external
//! fragmentation); worst case for everyone on Atlas (whole-machine jobs).
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin fig6_utilization [--scale f]
//! ```

use jigsaw_bench::registry::SPECS;
use jigsaw_bench::report::{pct, table, write_json};
use jigsaw_bench::runner::{product, run_grid_or_exit};
use jigsaw_bench::{paper_traces, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::Scenario;

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("generating traces at scale {} ...", args.scale);
    let traces = paper_traces(args.scale, args.seed);
    let names: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
    let cells = product(&names, &Scheme::ALL, &[Scenario::None]);
    eprintln!("running {} simulations ...", cells.len());
    let results = run_grid_or_exit(&args.pool(), &cells, &traces, args.seed, false);

    let columns: Vec<&str> = Scheme::ALL.iter().map(|k| k.name()).collect();
    let rows: Vec<(String, Vec<String>)> = names
        .iter()
        .map(|&trace| {
            let values = Scheme::ALL
                .iter()
                .map(|&k| {
                    pct(jigsaw_bench::report::cell(&results, trace, k, Scenario::None).utilization)
                })
                .collect();
            (trace.to_string(), values)
        })
        .collect();
    println!(
        "{}",
        table("Figure 6 — average system utilization", &columns, &rows)
    );
    write_json(&args.out_dir, "fig6_utilization", &results).expect("write results");
}
