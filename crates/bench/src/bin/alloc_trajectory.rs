//! The allocation-latency perf trajectory: per-radix, per-scenario p50/p99
//! of a single Jigsaw `allocate` call, committed as `BENCH_alloc.json` so
//! every PR's speedup or regression is visible in the bench record.
//!
//! Radixes 10 (250 nodes) and 22 (2662 nodes) bracket the original
//! acceptance criterion; radix 28 (5488 nodes) is the target the word-
//! parallel masks and the zero-alloc scratch arena aim at: fragmented90
//! single-allocation p50 in single-digit microseconds. Scenarios come from
//! [`jigsaw_bench::scenarios`] (shared with the `alloc_hot_path` Criterion
//! bench). Alongside wall-clock quantiles every cell records the scheme's
//! mean backtracking steps — the machine-independent effort metric of
//! Table 3 — so deterministic search regressions show up even under CI
//! timing noise.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin alloc_trajectory
//!     [--smoke] [--iters N] [--out PATH]
//!     [--floor PATH] [--max-regression F]
//! ```
//!
//! With `--floor` the run re-reads a committed `BENCH_alloc.json` and exits
//! non-zero if any cell's fresh p50 exceeds the committed p50 by more than
//! `--max-regression` (default 4.0 — conservative for shared CI runners),
//! mirroring the `serve_saturation --min-speedup` gate.

use jigsaw_bench::scenarios::{scenario, SCENARIOS};
use jigsaw_core::Scheme;
use jigsaw_topology::FatTree;
use serde::Deserialize;
use std::time::Instant;

const RADIXES: [u32; 3] = [10, 22, 28];

struct Args {
    iters: usize,
    out: String,
    floor: Option<String>,
    max_regression: f64,
}

struct Cell {
    radix: u32,
    scenario: &'static str,
    grants: usize,
    p50_ns: u64,
    p99_ns: u64,
    mean_steps: f64,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        iters: 4000,
        out: "BENCH_alloc.json".to_string(),
        floor: None,
        max_regression: 4.0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => args.iters = 300,
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--floor" => args.floor = Some(value("--floor")?),
            "--max-regression" => {
                args.max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (see source header for usage)"
                ))
            }
        }
    }
    Ok(args)
}

/// Measure one (radix, scenario) cell: `iters` timed allocate calls, each
/// followed by an untimed release + recycle so the machine state and the
/// scratch pools are identical on every iteration.
fn measure(radix: u32, scenario_name: &'static str, iters: usize) -> Cell {
    let tree = FatTree::maximal(radix).expect("even radix");
    let (mut state, mut alloc, _live, size) = scenario(scenario_name, &tree, Scheme::Jigsaw);
    let req = jigsaw_core::JobRequest::new(jigsaw_topology::ids::JobId(1_000_000), size);
    // Warm-up: fill the scratch pools and fault in the state.
    for _ in 0..(iters / 10).max(32) {
        if let Ok(a) = alloc.try_admit(&mut state, &req) {
            alloc.release(&mut state, &a);
            alloc.recycle(a);
        }
    }
    let mut lat = Vec::with_capacity(iters);
    let mut grants = 0usize;
    let mut steps = 0u64;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = alloc.try_admit(&mut state, &req);
        lat.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        steps += alloc.last_search_steps();
        if let Ok(a) = r {
            grants += 1;
            alloc.release(&mut state, &a);
            alloc.recycle(a);
        }
    }
    lat.sort_unstable();
    Cell {
        radix,
        scenario: scenario_name,
        grants,
        p50_ns: lat[iters / 2],
        p99_ns: lat[(iters * 99 / 100).min(iters - 1)],
        mean_steps: steps as f64 / iters as f64,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\n      \"radix\": {},\n      \"scenario\": \"{}\",\n      \
         \"scheme\": \"Jigsaw\",\n      \"grants\": {},\n      \"p50_ns\": {},\n      \
         \"p99_ns\": {},\n      \"mean_steps\": {:.1}\n    }}",
        c.radix, c.scenario, c.grants, c.p50_ns, c.p99_ns, c.mean_steps
    )
}

/// Committed p50 for (radix, scenario) from a previous `BENCH_alloc.json`.
fn floor_p50(floor: &serde::Value, radix: u32, scenario: &str) -> Option<u64> {
    let cells = serde::field(floor.as_object()?, "cells").as_array()?;
    for cell in cells {
        let obj = cell.as_object()?;
        if u32::from_value(serde::field(obj, "radix")).ok()? == radix
            && String::from_value(serde::field(obj, "scenario")).ok()? == scenario
        {
            return u64::from_value(serde::field(obj, "p50_ns")).ok();
        }
    }
    None
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("alloc_trajectory: {e}");
            std::process::exit(2);
        }
    };

    let mut cells = Vec::new();
    for radix in RADIXES {
        for scenario_name in SCENARIOS {
            eprintln!(
                "measuring radix {radix} / {scenario_name} ({} iters)",
                args.iters
            );
            cells.push(measure(radix, scenario_name, args.iters));
        }
    }

    println!(
        "## allocation latency trajectory — Jigsaw, {} iters/cell\n",
        args.iters
    );
    println!(
        "{:<8} {:<14} {:>8} {:>12} {:>12} {:>12}",
        "radix", "scenario", "grants", "p50 (us)", "p99 (us)", "steps"
    );
    for c in &cells {
        println!(
            "{:<8} {:<14} {:>8} {:>12.2} {:>12.2} {:>12.1}",
            c.radix,
            c.scenario,
            c.grants,
            c.p50_ns as f64 / 1000.0,
            c.p99_ns as f64 / 1000.0,
            c.mean_steps
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"alloc_trajectory\",\n  \"iters\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        args.iters,
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n")
    );
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("alloc_trajectory: write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);

    let Some(floor_path) = args.floor else { return };
    let text = match std::fs::read_to_string(&floor_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("alloc_trajectory: read floor {floor_path}: {e}");
            std::process::exit(1);
        }
    };
    let floor = match serde_json::from_str::<serde::Value>(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("alloc_trajectory: parse floor {floor_path}: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = false;
    for c in &cells {
        let Some(committed) = floor_p50(&floor, c.radix, c.scenario) else {
            eprintln!(
                "alloc_trajectory: floor has no cell for radix {} / {} — skipping",
                c.radix, c.scenario
            );
            continue;
        };
        let limit = (committed as f64 * args.max_regression).ceil() as u64;
        if c.p50_ns > limit {
            eprintln!(
                "alloc_trajectory: radix {} / {} p50 {}ns exceeds committed {}ns x {:.1} = {}ns",
                c.radix, c.scenario, c.p50_ns, committed, args.max_regression, limit
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "all cells within {:.1}x of the committed floor ({floor_path})",
        args.max_regression
    );
}
