//! Regenerate **Figure 8**: makespans for Thunder and Atlas, normalized to
//! Baseline, across the six job-performance scenarios.
//!
//! Paper shape to reproduce: Jigsaw ≤ Baseline under every speed-up
//! scenario (up to −15%), at most +6% in the no-speed-up worst case; TA
//! almost always worse than Baseline; LaaS between TA and Jigsaw; LC+S
//! tracks Jigsaw closely.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin fig8_makespan [--scale f]
//! ```

use jigsaw_bench::report::{cell, norm, table, write_json};
use jigsaw_bench::runner::{product, run_grid_or_exit};
use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::Scenario;

fn main() {
    let args = HarnessArgs::parse();
    let trace_names = ["Thunder", "Atlas"];
    eprintln!("generating traces at scale {} ...", args.scale);
    let traces: Vec<_> = trace_names
        .iter()
        .map(|n| trace_by_name(n, args.scale, args.seed))
        .collect();
    let cells = product(&trace_names, &Scheme::ALL, &Scenario::ALL);
    eprintln!("running {} simulations ...", cells.len());
    let results = run_grid_or_exit(&args.pool(), &cells, &traces, args.seed, false);

    let scenario_labels: Vec<String> = Scenario::ALL.iter().map(|s| s.label()).collect();
    let columns: Vec<&str> = scenario_labels.iter().map(String::as_str).collect();
    for trace in trace_names {
        let rows: Vec<(String, Vec<String>)> = Scheme::ISOLATING
            .iter()
            .map(|kind| {
                let values = Scenario::ALL
                    .iter()
                    .map(|&s| {
                        let r = cell(&results, trace, *kind, s);
                        let b = cell(&results, trace, Scheme::Baseline, s);
                        norm(r.makespan, b.makespan)
                    })
                    .collect();
                (kind.name().to_string(), values)
            })
            .collect();
        println!(
            "{}",
            table(
                &format!(
                    "Figure 8 — makespan on {trace}, normalized to Baseline (lower is better)"
                ),
                &columns,
                &rows
            )
        );
    }
    write_json(&args.out_dir, "fig8_makespan", &results).expect("write results");
}
