//! Ablation (DESIGN.md §6): shape enumeration order in Algorithm 1.
//!
//! Our Jigsaw enumerates shapes densest-first (`n_L` descending): jobs are
//! packed onto as few leaves as legally possible, preserving fully free
//! leaves — the currency of three-level allocations. This ablation flips
//! the order to widest-first and measures the utilization cost.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin ablation_shape_order [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::JigsawAllocator;
use jigsaw_sim::{SimConfig, Simulation};

fn main() {
    let args = HarnessArgs::parse();
    let pool = args.pool();
    let names = ["Synth-16", "Thunder"];
    let config = SimConfig::default();

    // One task per (trace, order) cell; trace generation is cheap next to
    // the simulation, so each cell regenerates its own copy.
    let cells: Vec<(&str, bool)> = names
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    let results = match pool.map(cells.clone(), |_, (name, widest)| {
        let (trace, tree) = trace_by_name(name, args.scale, args.seed);
        let alloc = if widest {
            JigsawAllocator::with_widest_first_order(&tree)
        } else {
            JigsawAllocator::new(&tree)
        };
        Simulation::new(&tree, &trace)
            .allocator(Box::new(alloc))
            .config(config.clone())
            .run()
    }) {
        Ok(r) => r,
        Err(tp) => {
            let (name, widest) = cells[tp.index];
            let order = if widest { "widest" } else { "densest" };
            eprintln!("error: cell ({name}, {order}-first) failed: {}", tp.message);
            std::process::exit(1);
        }
    };

    println!("## Ablation — Jigsaw shape enumeration order\n");
    println!(
        "{:<10} {:>16} {:>15} {:>16} {:>15}",
        "trace", "densest util", "densest µs/job", "widest util", "widest µs/job"
    );
    for (i, name) in names.iter().enumerate() {
        let (dense, wide) = (&results[2 * i], &results[2 * i + 1]);
        println!(
            "{:<10} {:>15.1}% {:>15.1} {:>15.1}% {:>15.1}",
            name,
            100.0 * dense.utilization,
            1e6 * dense.avg_sched_time_per_job(),
            100.0 * wide.utilization,
            1e6 * wide.avg_sched_time_per_job(),
        );
    }
    println!("\nDensest-first should match or beat widest-first: spreading small jobs");
    println!("destroys the fully free leaves that three-level allocations need.");
}
