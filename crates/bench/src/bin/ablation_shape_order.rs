//! Ablation (DESIGN.md §6): shape enumeration order in Algorithm 1.
//!
//! Our Jigsaw enumerates shapes densest-first (`n_L` descending): jobs are
//! packed onto as few leaves as legally possible, preserving fully free
//! leaves — the currency of three-level allocations. This ablation flips
//! the order to widest-first and measures the utilization cost.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin ablation_shape_order [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::JigsawAllocator;
use jigsaw_sim::{simulate, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    println!("## Ablation — Jigsaw shape enumeration order\n");
    println!(
        "{:<10} {:>16} {:>15} {:>16} {:>15}",
        "trace", "densest util", "densest µs/job", "widest util", "widest µs/job"
    );
    for name in ["Synth-16", "Thunder"] {
        let (trace, tree) = trace_by_name(name, args.scale, args.seed);
        let config = SimConfig::default();
        let dense = simulate(
            &tree,
            Box::new(JigsawAllocator::new(&tree)),
            &trace,
            &config,
        );
        let wide = simulate(
            &tree,
            Box::new(JigsawAllocator::with_widest_first_order(&tree)),
            &trace,
            &config,
        );
        println!(
            "{:<10} {:>15.1}% {:>15.1} {:>15.1}% {:>15.1}",
            name,
            100.0 * dense.utilization,
            1e6 * dense.avg_sched_time_per_job(),
            100.0 * wide.utilization,
            1e6 * wide.avg_sched_time_per_job(),
        );
    }
    println!("\nDensest-first should match or beat widest-first: spreading small jobs");
    println!("destroys the fully free leaves that three-level allocations need.");
}
