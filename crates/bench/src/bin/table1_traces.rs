//! Regenerate **Table 1**: characteristics of the job-queue traces.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin table1_traces [--scale f | --full]
//! ```

use jigsaw_bench::registry::SPECS;
use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_traces::stats::{format_table1, TraceSummary};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 1 — trace characteristics (scale {}; paper job counts at --full)\n",
        args.scale
    );
    let names: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
    let summaries: Vec<TraceSummary> = match args.pool().map(names.clone(), |_, name| {
        let (trace, _) = trace_by_name(name, args.scale, args.seed);
        TraceSummary::of(&trace)
    }) {
        Ok(s) => s,
        Err(tp) => {
            eprintln!(
                "error: generating trace {} failed: {}",
                names[tp.index], tp.message
            );
            std::process::exit(1);
        }
    };
    println!("{}", format_table1(&summaries));
    println!(
        "(System nodes for synthetic traces is '–' as in the paper; they are\n\
         simulated on the 1024/2662/5488-node clusters per §5.4.3.)"
    );
}
