//! Regenerate **Table 1**: characteristics of the job-queue traces.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin table1_traces [--scale f | --full]
//! ```

use jigsaw_bench::{paper_traces, HarnessArgs};
use jigsaw_traces::stats::{format_table1, TraceSummary};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 1 — trace characteristics (scale {}; paper job counts at --full)\n",
        args.scale
    );
    let summaries: Vec<TraceSummary> = paper_traces(args.scale, args.seed)
        .iter()
        .map(|(trace, _)| TraceSummary::of(trace))
        .collect();
    println!("{}", format_table1(&summaries));
    println!(
        "(System nodes for synthetic traces is '–' as in the paper; they are\n\
         simulated on the 1024/2662/5488-node clusters per §5.4.3.)"
    );
}
