//! Ablation (§4 of the paper / DESIGN.md §6): why Jigsaw restricts
//! three-level allocations to full leaves.
//!
//! The paper argues being maximally permissive (LC: every legal placement,
//! exclusive links) *lowers* utilization through external fragmentation of
//! scattered free nodes — only adding link *sharing* (LC+S) recovers it.
//! We run Jigsaw vs. LC vs. LC+S on one heavy trace:
//!
//! * **LC** is LC+S with every job's bandwidth class set to the full 80%
//!   cap — a link then fits exactly one job, i.e. exclusive links over the
//!   least-constrained placement space.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin ablation_lc [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::{SimConfig, Simulation};

fn main() {
    let args = HarnessArgs::parse();
    let (trace, tree) = trace_by_name("Synth-16", args.scale, args.seed);
    eprintln!("trace: {} jobs on {} nodes", trace.len(), tree.num_nodes());

    let config = SimConfig::default();

    // LC: least-constrained placements, exclusive links (bw = the cap).
    let mut lc_trace = trace.clone();
    for j in &mut lc_trace.jobs {
        j.bw_tenths = 40;
    }

    let variants = [
        ("Jigsaw (restricted)", Scheme::Jigsaw, &trace),
        ("LC (least constrained)", Scheme::LcS, &lc_trace),
        // LC+S: the real bandwidth classes.
        ("LC+S (LC + link sharing)", Scheme::LcS, &trace),
    ];
    let results = match args.pool().map(variants.to_vec(), |_, (_, scheme, t)| {
        Simulation::new(&tree, t)
            .scheme(scheme)
            .config(config.clone())
            .run()
    }) {
        Ok(r) => r,
        Err(tp) => {
            eprintln!(
                "error: variant `{}` failed: {}",
                variants[tp.index].0, tp.message
            );
            std::process::exit(1);
        }
    };

    println!("## Ablation — the full-leaf restriction (§4)\n");
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "variant", "utilization", "sched time/job", "makespan"
    );
    for ((name, _, _), r) in variants.iter().zip(&results) {
        println!(
            "{:<28} {:>11.1}% {:>14.1}µs {:>14.0}",
            name,
            100.0 * r.utilization,
            1e6 * r.avg_sched_time_per_job(),
            r.makespan,
        );
    }
    println!(
        "\nExpected shape (paper §4/§5.2.3): LC underperforms Jigsaw — permitting\n\
         every legal placement scatters free nodes and fragments links — while\n\
         LC+S recovers utilization only via (unrealistic) link sharing, at a\n\
         much higher scheduling cost."
    );
}
