//! Regenerate **Figure 7**: average job turnaround times for Aug-Cab and
//! Oct-Cab, normalized to Baseline, across the six job-performance
//! scenarios — for all jobs and for large jobs (> 100 nodes).
//!
//! Paper shape to reproduce: Jigsaw beats Baseline (< 1.00) under modest
//! speed-ups (Aug-Cab: every scenario; Oct-Cab: 10%/20%), always beats TA
//! and LaaS; large jobs are a few percent worse than Baseline except in
//! the 10%/20% scenarios.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin fig7_turnaround [--scale f]
//! ```

use jigsaw_bench::report::{cell, norm, table, write_json};
use jigsaw_bench::runner::{product, run_grid_or_exit};
use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::Scenario;

fn main() {
    let args = HarnessArgs::parse();
    let trace_names = ["Aug-Cab", "Oct-Cab"];
    eprintln!("generating Cab traces at scale {} ...", args.scale);
    let traces: Vec<_> = trace_names
        .iter()
        .map(|n| trace_by_name(n, args.scale, args.seed))
        .collect();
    let cells = product(&trace_names, &Scheme::ALL, &Scenario::ALL);
    eprintln!("running {} simulations ...", cells.len());
    let results = run_grid_or_exit(&args.pool(), &cells, &traces, args.seed, false);

    let scenario_labels: Vec<String> = Scenario::ALL.iter().map(|s| s.label()).collect();
    let columns: Vec<&str> = scenario_labels.iter().map(String::as_str).collect();
    for trace in trace_names {
        let mut rows = Vec::new();
        for kind in Scheme::ISOLATING {
            for (suffix, pick) in [("all", 0usize), ("large", 1usize)] {
                let values = Scenario::ALL
                    .iter()
                    .map(|&s| {
                        let r = cell(&results, trace, kind, s);
                        let b = cell(&results, trace, Scheme::Baseline, s);
                        if pick == 0 {
                            norm(r.turnaround_all, b.turnaround_all)
                        } else {
                            norm(r.turnaround_large, b.turnaround_large)
                        }
                    })
                    .collect();
                rows.push((format!("{} ({suffix})", kind.name()), values));
            }
        }
        println!(
            "{}",
            table(
                &format!(
                    "Figure 7 — turnaround on {trace}, normalized to Baseline (lower is better)"
                ),
                &columns,
                &rows
            )
        );
    }
    write_json(&args.out_dir, "fig7_turnaround", &results).expect("write results");
}
