//! Saturation benchmark for the `jigsaw-sched` TCP daemon: journaled
//! requests/s and latency quantiles under concurrent load, group-commit
//! versus the per-record-fsync baseline.
//!
//! Two daemon configurations serve the identical seeded request mix from
//! the same loadgen (8 connections, pipelined):
//!
//! * `per_record_fsync` — `max_batch = 1`: every request's journal
//!   record gets its own fsync before the reply, byte-identical on disk
//!   to the original stdin serve path.
//! * `group_commit` — `max_batch = 64`: concurrent requests drained in
//!   one batch share a single fsync; replies still release only after
//!   the covering sync, so the durability guarantee is unchanged.
//!
//! The ratio of the two throughputs is the payoff of the group-commit
//! design (the tentpole claim is ≥ 3× at 8 connections). Results land in
//! `BENCH_serve.json` as the PR-over-PR perf-trajectory record.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin serve_saturation
//!     [--smoke] [--connections N] [--requests N] [--pipeline N]
//!     [--out PATH] [--min-speedup F]
//! ```

use jigsaw_core::{ObservedAllocator, Scheme};
use jigsaw_net::{loadgen, Engine, LoadgenConfig, LoadgenReport, Server, ServerConfig};
use jigsaw_obs::Registry;
use jigsaw_persist::PersistentState;
use jigsaw_topology::FatTree;
use std::path::PathBuf;

const RADIX: u32 = 8; // 128 nodes

struct Args {
    connections: usize,
    requests_per_conn: usize,
    pipeline: usize,
    out: String,
    min_speedup: f64,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        connections: 8,
        requests_per_conn: 2000,
        pipeline: 8,
        out: "BENCH_serve.json".to_string(),
        min_speedup: 0.0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => args.requests_per_conn = 300,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--requests" => {
                args.requests_per_conn = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--pipeline" => {
                args.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (see source header for usage)"
                ))
            }
        }
    }
    Ok(args)
}

/// Start a durable daemon with the given fsync batching, drive the full
/// seeded load through it, shut it down, and return the loadgen report.
fn run_mode(mode: &str, max_batch: usize, args: &Args) -> Result<LoadgenReport, String> {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "jigsaw-serve-saturation-{mode}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let tree = FatTree::maximal(RADIX).map_err(|e| e.to_string())?;
    let registry = Registry::new();
    let (mut persist, _report) =
        PersistentState::open(&dir, tree).map_err(|e| format!("journal {}: {e}", dir.display()))?;
    persist.attach_registry(&registry);
    let allocator = Box::new(ObservedAllocator::new(
        Scheme::Jigsaw.make(&tree),
        &registry,
    ));
    let engine = Engine::new(tree, allocator, persist, &registry);
    let server = Server::start(
        engine,
        &ServerConfig {
            max_batch,
            max_conns: args.connections + 1,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("start daemon: {e}"))?;

    let config = LoadgenConfig {
        addr: server.addr().to_string(),
        connections: args.connections,
        requests_per_conn: args.requests_per_conn,
        pipeline: args.pipeline,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config, &Registry::new()).map_err(|e| format!("loadgen: {e}"))?;
    let code = server.wait();
    if code != 0 {
        return Err(format!("daemon exited with status {code}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

fn mode_json(mode: &str, max_batch: usize, r: &LoadgenReport) -> String {
    format!(
        "    {{\n      \"mode\": \"{mode}\",\n      \"max_batch\": {max_batch},\n      \
         \"requests\": {},\n      \"ok\": {},\n      \"err\": {},\n      \
         \"rps\": {:.1},\n      \"p50_ns\": {},\n      \"p99_ns\": {},\n      \
         \"mean_ns\": {}\n    }}",
        r.requests,
        r.ok,
        r.err,
        r.rps(),
        r.p50_ns,
        r.p99_ns,
        r.mean_ns
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_saturation: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "saturating a durable radix-{RADIX} daemon: {} connections x {} requests, pipeline {}",
        args.connections, args.requests_per_conn, args.pipeline
    );

    let mut results = Vec::new();
    for (mode, max_batch) in [("per_record_fsync", 1), ("group_commit", 64)] {
        eprintln!("running {mode} (max_batch={max_batch}) ...");
        match run_mode(mode, max_batch, &args) {
            Ok(report) => {
                eprintln!("  {report}");
                results.push((mode, max_batch, report));
            }
            Err(e) => {
                eprintln!("serve_saturation: {mode}: {e}");
                std::process::exit(1);
            }
        }
    }

    let baseline = &results[0].2;
    let group = &results[1].2;
    let speedup = if baseline.rps() > 0.0 {
        group.rps() / baseline.rps()
    } else {
        0.0
    };

    println!(
        "## serve saturation — journaled daemon throughput ({} connections)\n",
        args.connections
    );
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>12}",
        "mode", "max_batch", "req/s", "p50 (us)", "p99 (us)"
    );
    for (mode, max_batch, r) in &results {
        println!(
            "{:<18} {:>9} {:>12.0} {:>12} {:>12}",
            mode,
            max_batch,
            r.rps(),
            r.p50_ns / 1_000,
            r.p99_ns / 1_000
        );
    }
    println!("\ngroup-commit speedup over per-record fsync: {speedup:.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"serve_saturation\",\n  \"connections\": {},\n  \
         \"requests_per_conn\": {},\n  \"pipeline\": {},\n  \"modes\": [\n{}\n  ],\n  \
         \"group_commit_speedup\": {:.2}\n}}\n",
        args.connections,
        args.requests_per_conn,
        args.pipeline,
        results
            .iter()
            .map(|(m, b, r)| mode_json(m, *b, r))
            .collect::<Vec<_>>()
            .join(",\n"),
        speedup
    );
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("serve_saturation: write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);

    if args.min_speedup > 0.0 && speedup < args.min_speedup {
        eprintln!(
            "serve_saturation: group-commit speedup {speedup:.2}x is below the required {:.2}x",
            args.min_speedup
        );
        std::process::exit(1);
    }
}
