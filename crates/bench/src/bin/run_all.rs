//! Run the complete evaluation — every table and figure — and leave the
//! raw results under `results/*.json`. Equivalent to running each
//! experiment binary in sequence with shared traces.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin run_all [--scale f | --full]
//! ```

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1_traces",
        "motivation_interference",
        "fig6_utilization",
        "table2_inst_util",
        "fig7_turnaround",
        "fig8_makespan",
        "table3_schedtime",
        "ablation_lc",
        "ablation_shape_order",
        "backfill_policies",
        "estimate_error",
        "failure_resilience",
        "variance_check",
        "scale_sweep",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================= {bin} =================\n");
        let status = Command::new(exe_dir.join(bin))
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments complete; JSON results in ./results/");
}
