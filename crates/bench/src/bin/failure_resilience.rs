//! Extension experiment: scheduling under node failures.
//!
//! The paper evaluates a failure-free machine; production fat-trees lose
//! nodes routinely. This sweep injects memoryless node failures (MTBF per
//! node from years down to weeks, scaled to the shortened trace horizon)
//! and asks whether Jigsaw's structured placements degrade any faster than
//! Baseline's — they should not: a failed node costs Jigsaw at most the
//! fully-free status of one leaf, and killed jobs requeue identically
//! under every scheme.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin failure_resilience [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::{FailureModel, SimConfig, Simulation};

fn main() {
    let args = HarnessArgs::parse();
    let (trace, tree) = trace_by_name("Synth-16", args.scale, args.seed);
    eprintln!("trace: {} jobs on {} nodes", trace.len(), tree.num_nodes());

    println!("## Node-failure resilience (Synth-16)\n");
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>11} {:>11} {:>12}",
        "failure model", "failures", "killed", "scheme", "utilization", "turnaround", "makespan"
    );
    // MTBFs chosen relative to the trace horizon (~10^4 s at default
    // scale) so the sweep spans "rare" to "constant" failures.
    let models = [
        ("none", FailureModel::None),
        (
            "mtbf 2e6 s/node",
            FailureModel::Random {
                mtbf_node_seconds: 2e6,
                repair_seconds: 600.0,
            },
        ),
        (
            "mtbf 5e5 s/node",
            FailureModel::Random {
                mtbf_node_seconds: 5e5,
                repair_seconds: 600.0,
            },
        ),
        (
            "mtbf 1e5 s/node",
            FailureModel::Random {
                mtbf_node_seconds: 1e5,
                repair_seconds: 600.0,
            },
        ),
    ];
    let schemes = [Scheme::Baseline, Scheme::Jigsaw, Scheme::Laas];
    let cells: Vec<(usize, Scheme)> = (0..models.len())
        .flat_map(|m| schemes.iter().map(move |&k| (m, k)))
        .collect();
    let results = match args.pool().map(cells.clone(), |_, (m, kind)| {
        let config = SimConfig {
            failures: models[m].1,
            scheme_benefits: kind.benefits_from_isolation(),
            ..SimConfig::default()
        };
        Simulation::new(&tree, &trace)
            .scheme(kind)
            .config(config)
            .run()
    }) {
        Ok(r) => r,
        Err(tp) => {
            let (m, kind) = cells[tp.index];
            eprintln!(
                "error: cell ({}, {kind}) failed: {}",
                models[m].0, tp.message
            );
            std::process::exit(1);
        }
    };
    for (&(m, kind), r) in cells.iter().zip(&results) {
        println!(
            "{:<22} {:>9} {:>8} {:>8} {:>10.1}% {:>11.0} {:>12.0}",
            models[m].0,
            r.failures,
            r.killed_jobs,
            kind.name(),
            100.0 * r.utilization,
            r.avg_turnaround(),
            r.makespan,
        );
        if kind == *schemes.last().unwrap() {
            println!();
        }
    }
    println!("Jigsaw's utilization should track Baseline's decline point-for-point:");
    println!("isolation does not amplify failure cost.");
}
