//! Statistical stability of the headline result: Figure 6's utilization
//! values across independent trace seeds.
//!
//! The paper reports single runs per trace; this sweep regenerates
//! Synth-16 and Oct-Cab with several seeds and reports mean ± sample
//! standard deviation per scheme. The scheme ordering must hold for every
//! seed, and the spread should be well under the between-scheme gaps —
//! otherwise Figure 6 would be noise.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin variance_check [--scale f] [--seed n]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::SchedulerKind;
use jigsaw_sim::{simulate, SimConfig};

const SEEDS: u64 = 5;

fn main() {
    let args = HarnessArgs::parse();
    let schemes = SchedulerKind::ALL;
    println!("## Utilization stability over {SEEDS} trace seeds (mean ± stddev)\n");
    println!(
        "{:<10} {}",
        "trace",
        schemes
            .iter()
            .map(|k| format!("{:>16}", k.name()))
            .collect::<String>()
    );
    for name in ["Synth-16", "Oct-Cab"] {
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for s in 0..SEEDS {
            let (trace, tree) = trace_by_name(name, args.scale, args.seed + 1000 * s);
            for (k, &kind) in schemes.iter().enumerate() {
                let config = SimConfig {
                    scheme_benefits: kind != SchedulerKind::Baseline,
                    ..SimConfig::default()
                };
                let r = simulate(&tree, kind.make(&tree), &trace, &config);
                samples[k].push(r.utilization);
            }
        }
        let cells: String = samples
            .iter()
            .map(|v| {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let var =
                    v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1).max(1) as f64;
                format!("{:>9.1}%±{:>4.1}", 100.0 * mean, 100.0 * var.sqrt())
            })
            .collect();
        println!("{name:<10} {cells}");
        // Ordering check: Jigsaw > LaaS and Jigsaw > TA on every seed.
        let idx = |k: SchedulerKind| schemes.iter().position(|&x| x == k).unwrap();
        let jig_row = &samples[idx(SchedulerKind::Jigsaw)];
        let laas_row = &samples[idx(SchedulerKind::Laas)];
        let ta_row = &samples[idx(SchedulerKind::Ta)];
        for ((&jig, &laas), &ta) in jig_row.iter().zip(laas_row).zip(ta_row) {
            assert!(
                jig > laas && jig > ta,
                "{name}: ordering must hold for every seed"
            );
        }
    }
    println!("\nordering Jigsaw > LaaS and Jigsaw > TA held on every seed.");
}
