//! Statistical stability of the headline result: Figure 6's utilization
//! values across independent trace seeds.
//!
//! The paper reports single runs per trace; this sweep regenerates
//! Synth-16 and Oct-Cab with several seeds and reports mean ± sample
//! standard deviation per scheme. The scheme ordering must hold for every
//! seed, and the spread should be well under the between-scheme gaps —
//! otherwise Figure 6 would be noise.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin variance_check [--scale f] [--seed n] [--jobs n]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::{sweep_seeds, SimConfig};

const SEEDS: u64 = 5;

fn main() {
    let args = HarnessArgs::parse();
    let pool = args.pool();
    let schemes = Scheme::ALL;
    println!("## Utilization stability over {SEEDS} trace seeds (mean ± stddev)\n");
    println!(
        "{:<10} {}",
        "trace",
        schemes
            .iter()
            .map(|k| format!("{:>16}", k.name()))
            .collect::<String>()
    );
    for name in ["Synth-16", "Oct-Cab"] {
        let seeds: Vec<u64> = (0..SEEDS).map(|s| args.seed + 1000 * s).collect();
        let runs = match sweep_seeds(&pool, &seeds, &schemes, &SimConfig::default(), |seed| {
            trace_by_name(name, args.scale, seed)
        }) {
            Ok(runs) => runs,
            Err(failure) => {
                eprintln!("error: {failure}");
                std::process::exit(1);
            }
        };
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for run in &runs {
            let k = schemes.iter().position(|&x| x == run.scheme).unwrap();
            samples[k].push(run.result.utilization);
        }
        let cells: String = samples
            .iter()
            .map(|v| {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let var =
                    v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1).max(1) as f64;
                format!("{:>9.1}%±{:>4.1}", 100.0 * mean, 100.0 * var.sqrt())
            })
            .collect();
        println!("{name:<10} {cells}");
        // Ordering check: Jigsaw > LaaS and Jigsaw > TA on every seed.
        let idx = |k: Scheme| schemes.iter().position(|&x| x == k).unwrap();
        let jig_row = &samples[idx(Scheme::Jigsaw)];
        let laas_row = &samples[idx(Scheme::Laas)];
        let ta_row = &samples[idx(Scheme::Ta)];
        for ((&jig, &laas), &ta) in jig_row.iter().zip(laas_row).zip(ta_row) {
            assert!(
                jig > laas && jig > ta,
                "{name}: ordering must hold for every seed"
            );
        }
    }
    println!("\nordering Jigsaw > LaaS and Jigsaw > TA held on every seed.");
}
