//! The paper's *motivation* (§1–2.2), measured: inter-job network
//! interference under traditional scheduling vs. its structural absence
//! under Jigsaw.
//!
//! A churned machine runs several communication-heavy jobs concurrently;
//! each executes random permutation traffic. We compute max-min fair flow
//! rates and report each job's communication slowdown, three ways:
//!
//! * **Baseline + D-mod-k** — network-oblivious placement, default routing
//!   (the paper cites slowdowns up to 120% for this configuration);
//! * **Jigsaw + partition routing** — static in-partition routing: some
//!   *intra*-job contention may remain (static routing is not perfect),
//!   but it is provably independent of the neighbors;
//! * **Jigsaw + rearranged routing** — the offline routing of Theorem 6:
//!   slowdown exactly 1.0 for every job and every permutation.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin motivation_interference
//! ```

use jigsaw_bench::HarnessArgs;
use jigsaw_core::{Allocation, Allocator, JobRequest, Scheme};
use jigsaw_routing::dmodk::dmodk_route;
use jigsaw_routing::flowsim::{job_slowdowns, Flow};
use jigsaw_routing::permutation::random_permutation;
use jigsaw_routing::{route_permutation, PartitionRouter};
use jigsaw_topology::ids::{JobId, NodeId};
use jigsaw_topology::{FatTree, SystemState};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SIZES: [u32; 6] = [96, 64, 48, 112, 80, 40];

fn main() {
    let args = HarnessArgs::parse();
    let tree = FatTree::maximal(16).unwrap();
    let mut rng = StdRng::seed_from_u64(args.seed);
    println!(
        "six permutation-traffic jobs ({:?} nodes) on a {}-node fat-tree\n",
        SIZES,
        tree.num_nodes()
    );

    // Churn the machine so placements fragment, as in production.
    let churn = |state: &mut SystemState, alloc: &mut Box<dyn Allocator>, rng: &mut StdRng| {
        let mut held = Vec::new();
        for i in 0..400u32 {
            if let Ok(a) = alloc.try_admit(
                state,
                &JobRequest::new(JobId(1000 + i), 1 + rng.random_range(0u32..24)),
            ) {
                held.push(a);
            }
        }
        use rand::seq::SliceRandom;
        held.shuffle(rng);
        for a in held.iter().skip(held.len() / 3) {
            alloc.release(state, a);
        }
    };

    let place = |kind: Scheme, rng: &mut StdRng| -> (Vec<Allocation>, SystemState) {
        let mut state = SystemState::new(tree);
        let mut alloc = kind.make(&tree);
        churn(&mut state, &mut alloc, rng);
        let allocs = SIZES
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| {
                alloc
                    .try_admit(&mut state, &JobRequest::new(JobId(i as u32), s))
                    .ok()
            })
            .collect();
        (allocs, state)
    };

    // --- Baseline + D-mod-k. ------------------------------------------------
    let (allocs, _) = place(Scheme::Baseline, &mut rng);
    let flows: Vec<Vec<Flow>> = allocs
        .iter()
        .map(|a| {
            random_permutation(&a.nodes, &mut rng)
                .into_iter()
                .map(|(s, d)| Flow {
                    src: s,
                    dst: d,
                    route: dmodk_route(&tree, s, d),
                })
                .collect()
        })
        .collect();
    let together = job_slowdowns(&tree, &flows);
    let alone: Vec<f64> = flows
        .iter()
        .map(|f| job_slowdowns(&tree, std::slice::from_ref(f))[0])
        .collect();
    report_delta("Baseline + D-mod-k", &allocs, &alone, &together);

    // --- Baseline + SAR-like reactive rerouting (§7 related work). ----------
    // Same placements, but a global balancer re-routes every live flow.
    let all_pairs: Vec<(NodeId, NodeId)> = flows.iter().flatten().map(|f| (f.src, f.dst)).collect();
    let balanced = jigsaw_routing::adaptive::balance_routes(&tree, &all_pairs);
    let mut rerouted: Vec<Vec<Flow>> = Vec::new();
    let mut cursor = 0;
    for job_flows in &flows {
        rerouted.push(
            job_flows
                .iter()
                .zip(&balanced[cursor..cursor + job_flows.len()])
                .map(|(f, &route)| Flow {
                    src: f.src,
                    dst: f.dst,
                    route,
                })
                .collect(),
        );
        cursor += job_flows.len();
    }
    let together = job_slowdowns(&tree, &rerouted);
    let alone: Vec<f64> = rerouted
        .iter()
        .map(|f| job_slowdowns(&tree, std::slice::from_ref(f))[0])
        .collect();
    report_delta("Baseline + SAR-like rerouting", &allocs, &alone, &together);
    println!("  (mitigates, but interference can remain nonzero — no guarantee)\n");

    // --- Jigsaw + static partition routing. ----------------------------------
    let (allocs, _) = place(Scheme::Jigsaw, &mut rng);
    let perms: Vec<Vec<(NodeId, NodeId)>> = allocs
        .iter()
        .map(|a| random_permutation(&a.nodes, &mut rng))
        .collect();
    let flows: Vec<Vec<Flow>> = allocs
        .iter()
        .zip(&perms)
        .map(|(a, perm)| {
            let router = PartitionRouter::new(&tree, a).expect("structured");
            perm.iter()
                .map(|&(s, d)| Flow {
                    src: s,
                    dst: d,
                    route: router.route(&tree, s, d).unwrap(),
                })
                .collect()
        })
        .collect();
    let together = job_slowdowns(&tree, &flows);
    let alone: Vec<f64> = flows
        .iter()
        .map(|f| job_slowdowns(&tree, std::slice::from_ref(f))[0])
        .collect();
    report_delta(
        "Jigsaw + partition routing (static)",
        &allocs,
        &alone,
        &together,
    );
    // Neighbor-independence: each job alone has the same slowdown.
    for (i, (&a, &t)) in alone.iter().zip(&together).enumerate() {
        assert!(
            (a - t).abs() < 1e-9,
            "job {i} slowdown must be neighbor-independent"
        );
    }
    println!("  (verified: zero interference — alone == together for every job)\n");

    // --- Jigsaw + rearranged (offline) routing. -----------------------------
    let flows: Vec<Vec<Flow>> = allocs
        .iter()
        .zip(&perms)
        .map(|(a, perm)| {
            route_permutation(&tree, a, perm)
                .expect("legal partitions are rearrangeable")
                .flows
                .into_iter()
                .map(|(s, d, route)| Flow {
                    src: s,
                    dst: d,
                    route,
                })
                .collect()
        })
        .collect();
    let slowdowns = job_slowdowns(&tree, &flows);
    report(
        "Jigsaw + rearranged routing (Theorem 6)",
        &allocs,
        &slowdowns,
    );
    assert!(slowdowns.iter().all(|&s| (s - 1.0).abs() < 1e-9));
    println!("  (guaranteed: every permutation routes contention-free)");
}

fn report(title: &str, allocs: &[Allocation], slowdowns: &[f64]) {
    println!("{title}:");
    for (a, s) in allocs.iter().zip(slowdowns) {
        println!(
            "  job {:>2} ({:>3} nodes): slowdown {:.2}x ({:+.0}%)",
            a.job.0,
            a.requested,
            s,
            100.0 * (s - 1.0)
        );
    }
    let worst = slowdowns.iter().copied().fold(1.0f64, f64::max);
    println!("  worst case: {worst:.2}x\n");
}

/// Per-job slowdown alone vs. beside neighbors; the delta is pure
/// inter-job interference (intra-job static-routing contention is in both
/// columns).
fn report_delta(title: &str, allocs: &[Allocation], alone: &[f64], together: &[f64]) {
    println!("{title}:");
    for ((a, &al), &tg) in allocs.iter().zip(alone).zip(together) {
        println!(
            "  job {:>2} ({:>3} nodes): alone {:.2}x, with neighbors {:.2}x  → interference {:+.0}%",
            a.job.0,
            a.requested,
            al,
            tg,
            100.0 * (tg / al - 1.0)
        );
    }
    let worst = alone
        .iter()
        .zip(together)
        .map(|(&a, &t)| t / a)
        .fold(1.0f64, f64::max);
    println!("  worst interference: {:+.0}%\n", 100.0 * (worst - 1.0));
}
