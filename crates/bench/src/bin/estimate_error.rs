//! Extension experiment: sensitivity of the evaluation to runtime-estimate
//! quality.
//!
//! The paper's simulator (like the LaaS code base it extends) schedules
//! with exact runtimes; production EASY runs on user estimates, which are
//! overwhelmingly over-estimates. This sweep scales the per-job
//! over-estimation factor and reports Jigsaw's utilization and turnaround,
//! checking that the paper's conclusions are not an artifact of perfect
//! estimates. Expected shape: EASY is famously robust to over-estimation —
//! utilization degrades by at most a point or two even at 10×.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin estimate_error [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::SchedulerKind;
use jigsaw_sim::{simulate, EstimateModel, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    println!("## Runtime-estimate sensitivity (Jigsaw, EASY backfilling)\n");
    println!(
        "{:<12} {:>24} {:>11} {:>14} {:>12}",
        "trace", "estimates", "utilization", "avg turnaround", "makespan"
    );
    for name in ["Synth-16", "Oct-Cab"] {
        let (trace, tree) = trace_by_name(name, args.scale, args.seed);
        for (label, model) in [
            ("exact", EstimateModel::Exact),
            ("over up to 2x", EstimateModel::Over { max_factor: 2.0 }),
            ("over up to 5x", EstimateModel::Over { max_factor: 5.0 }),
            ("over up to 10x", EstimateModel::Over { max_factor: 10.0 }),
        ] {
            let config = SimConfig {
                estimates: model,
                ..SimConfig::default()
            };
            let r = simulate(&tree, SchedulerKind::Jigsaw.make(&tree), &trace, &config);
            println!(
                "{:<12} {:>24} {:>10.1}% {:>14.0} {:>12.0}",
                name,
                label,
                100.0 * r.utilization,
                r.avg_turnaround(),
                r.makespan,
            );
        }
    }
    println!("\nEASY's robustness to over-estimation means the paper's exact-runtime");
    println!("simulator does not flatter Jigsaw: the utilization gap to Baseline is");
    println!("estimate-insensitive.");
}
