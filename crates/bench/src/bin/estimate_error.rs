//! Extension experiment: sensitivity of the evaluation to runtime-estimate
//! quality.
//!
//! The paper's simulator (like the LaaS code base it extends) schedules
//! with exact runtimes; production EASY runs on user estimates, which are
//! overwhelmingly over-estimates. This sweep scales the per-job
//! over-estimation factor and reports Jigsaw's utilization and turnaround,
//! checking that the paper's conclusions are not an artifact of perfect
//! estimates. Expected shape: EASY is famously robust to over-estimation —
//! utilization degrades by at most a point or two even at 10×.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin estimate_error [--scale f]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::{EstimateModel, SimConfig, Simulation};

fn main() {
    let args = HarnessArgs::parse();
    let pool = args.pool();
    let names = ["Synth-16", "Oct-Cab"];
    let models = [
        ("exact", EstimateModel::Exact),
        ("over up to 2x", EstimateModel::Over { max_factor: 2.0 }),
        ("over up to 5x", EstimateModel::Over { max_factor: 5.0 }),
        ("over up to 10x", EstimateModel::Over { max_factor: 10.0 }),
    ];

    // Generate each trace once, then fan the (trace × model) cells out.
    let generated = match pool.map(names.to_vec(), |_, name| {
        trace_by_name(name, args.scale, args.seed)
    }) {
        Ok(g) => g,
        Err(tp) => {
            eprintln!(
                "error: generating trace {} failed: {}",
                names[tp.index], tp.message
            );
            std::process::exit(1);
        }
    };
    let cells: Vec<(usize, usize)> = (0..names.len())
        .flat_map(|t| (0..models.len()).map(move |m| (t, m)))
        .collect();
    let results = match pool.map(cells.clone(), |_, (t, m)| {
        let (trace, tree) = &generated[t];
        let config = SimConfig {
            estimates: models[m].1,
            ..SimConfig::default()
        };
        Simulation::new(tree, trace)
            .scheme(Scheme::Jigsaw)
            .config(config)
            .run()
    }) {
        Ok(r) => r,
        Err(tp) => {
            let (t, m) = cells[tp.index];
            eprintln!(
                "error: cell ({}, {}) failed: {}",
                names[t], models[m].0, tp.message
            );
            std::process::exit(1);
        }
    };

    println!("## Runtime-estimate sensitivity (Jigsaw, EASY backfilling)\n");
    println!(
        "{:<12} {:>24} {:>11} {:>14} {:>12}",
        "trace", "estimates", "utilization", "avg turnaround", "makespan"
    );
    for (&(t, m), r) in cells.iter().zip(&results) {
        println!(
            "{:<12} {:>24} {:>10.1}% {:>14.0} {:>12.0}",
            names[t],
            models[m].0,
            100.0 * r.utilization,
            r.avg_turnaround(),
            r.makespan,
        );
    }
    println!("\nEASY's robustness to over-estimation means the paper's exact-runtime");
    println!("simulator does not flatter Jigsaw: the utilization gap to Baseline is");
    println!("estimate-insensitive.");
}
