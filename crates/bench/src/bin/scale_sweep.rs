//! Quantify the one scale sensitivity EXPERIMENTS.md documents: Figure 6's
//! Thunder column as the trace grows from 2% to 15% of the paper's job
//! count. The 965-node maximum-size job is over-represented at small
//! scales; its machine drain shrinks relative to the horizon as the trace
//! grows, and the column converges to the paper's values.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin scale_sweep [--jobs n]
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::{sweep_points, SimConfig};
use std::sync::Mutex;

fn main() {
    let args = HarnessArgs::parse();
    let scales = [0.02f64, 0.05, 0.1, 0.15];
    let schemes = [Scheme::Baseline, Scheme::Jigsaw, Scheme::LcS];
    // Trace sizes, recorded as the sweep generates each scale's trace.
    let job_counts = Mutex::new(vec![0usize; scales.len()]);
    let runs = match sweep_points(
        &args.pool(),
        &scales,
        &schemes,
        &SimConfig::default(),
        |&scale| {
            let (trace, tree) = trace_by_name("Thunder", scale, args.seed);
            let i = scales.iter().position(|&s| s == scale).unwrap();
            job_counts
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = trace.len();
            (trace, tree)
        },
    ) {
        Ok(runs) => runs,
        Err(failure) => {
            eprintln!("error: {failure}");
            std::process::exit(1);
        }
    };

    println!("## Thunder utilization vs. trace scale\n");
    println!(
        "{:>7} {:>7} {:>10} {:>8} {:>8}",
        "scale", "jobs", "Baseline", "Jigsaw", "LC+S"
    );
    let job_counts = job_counts.into_inner().unwrap();
    for (i, &scale) in scales.iter().enumerate() {
        let cells: Vec<String> = runs
            .iter()
            .filter(|r| r.point == scale)
            .map(|r| format!("{:>7.1}%", 100.0 * r.result.utilization))
            .collect();
        println!(
            "{:>7} {:>7} {:>10} {:>8} {:>8}",
            scale, job_counts[i], cells[0], cells[1], cells[2]
        );
    }
    println!("\nJigsaw and LC+S converge toward the paper's 95-96% as the horizon");
    println!("amortizes the single whole-machine-scale job.");
}
