//! Quantify the one scale sensitivity EXPERIMENTS.md documents: Figure 6's
//! Thunder column as the trace grows from 2% to 15% of the paper's job
//! count. The 965-node maximum-size job is over-represented at small
//! scales; its machine drain shrinks relative to the horizon as the trace
//! grows, and the column converges to the paper's values.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin scale_sweep
//! ```

use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::SchedulerKind;
use jigsaw_sim::{simulate, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    println!("## Thunder utilization vs. trace scale\n");
    println!(
        "{:>7} {:>7} {:>10} {:>8} {:>8}",
        "scale", "jobs", "Baseline", "Jigsaw", "LC+S"
    );
    for scale in [0.02f64, 0.05, 0.1, 0.15] {
        let (trace, tree) = trace_by_name("Thunder", scale, args.seed);
        let mut cells = Vec::new();
        for kind in [
            SchedulerKind::Baseline,
            SchedulerKind::Jigsaw,
            SchedulerKind::LcS,
        ] {
            let config = SimConfig {
                scheme_benefits: kind != SchedulerKind::Baseline,
                ..SimConfig::default()
            };
            let r = simulate(&tree, kind.make(&tree), &trace, &config);
            cells.push(format!("{:>7.1}%", 100.0 * r.utilization));
        }
        println!(
            "{:>7} {:>7} {:>10} {:>8} {:>8}",
            scale,
            trace.len(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("\nJigsaw and LC+S converge toward the paper's 95-96% as the horizon");
    println!("amortizes the single whole-machine-scale job.");
}
