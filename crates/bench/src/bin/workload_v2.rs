//! Extension experiment: workload model v2 (DESIGN §13).
//!
//! The paper evaluates only independent rigid jobs; this harness runs the
//! three v2 scenarios — `dag_pipeline` (chained stages), `dag_fanout`
//! (fork/join groups), and `reserved_mix` (rigid load with advance
//! reservations) — across every scheme, and reports utilization,
//! turnaround, makespan, and missed reservations. DAG gating serializes
//! work the queue would otherwise overlap, so utilization lands below the
//! rigid-workload numbers of Fig. 6; the interesting signal is the *gap
//! between schemes* under dependency-structured arrivals.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin workload_v2 [--scale f] [--jobs n]
//! ```
//!
//! Results land in `results/workload_v2.json`; like every harness, output
//! is byte-identical for any `--jobs` worker count.

use jigsaw_bench::registry::WORKLOAD_V2;
use jigsaw_bench::report::{pct, table, write_json};
use jigsaw_bench::{run_grid_or_exit, trace_by_name, GridCell, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::Scenario;

fn main() {
    let args = HarnessArgs::parse();
    let traces: Vec<_> = WORKLOAD_V2
        .iter()
        .map(|name| trace_by_name(name, args.scale, args.seed))
        .collect();
    for (trace, tree) in &traces {
        eprintln!(
            "trace: {} — {} jobs on {} nodes",
            trace.name,
            trace.len(),
            tree.num_nodes()
        );
    }

    // Cells key on the generated trace's own name (`dag_pipeline-16`),
    // which carries the mean job size; the registry key is the bare
    // scenario name.
    let cells: Vec<GridCell> = traces
        .iter()
        .flat_map(|(trace, _)| {
            Scheme::ALL.iter().map(|&scheme| GridCell {
                trace: trace.name.clone(),
                scheme,
                scenario: Scenario::None,
            })
        })
        .collect();
    let results = run_grid_or_exit(&args.pool(), &cells, &traces, args.seed, false);

    for (trace, _) in &traces {
        let name = trace.name.as_str();
        let rows: Vec<(String, Vec<String>)> = results
            .iter()
            .filter(|r| r.trace == name)
            .map(|r| {
                (
                    r.scheme.to_string(),
                    vec![
                        pct(r.utilization),
                        format!("{:.0}", r.turnaround_all),
                        format!("{:.0}", r.makespan),
                        format!("{}", r.unschedulable),
                    ],
                )
            })
            .collect();
        println!(
            "{}",
            table(
                name,
                &["utilization", "turnaround", "makespan", "unsched"],
                &rows
            )
        );
    }

    if let Err(e) = write_json(&args.out_dir, "workload_v2", &results) {
        eprintln!("error: writing report: {e}");
        std::process::exit(1);
    }
    println!("report: {}/workload_v2.json", args.out_dir);
}
