//! The defragmentation-recovery trajectory: how much of the utilization
//! lost to fragmentation the [`Decision::Reconfigure`] outcome wins back,
//! committed as `BENCH_defrag.json` so every PR's recovery rate is
//! visible in the bench record.
//!
//! Each arm prepares the shared `fragmented90` scenario (a machine
//! churned to ~90% occupancy — `jigsaw_bench::scenarios`), then streams
//! deterministic probe jobs sized to need full leaves. Admitted probes
//! stay resident; whenever raw capacity runs short, the *smallest*
//! resident jobs "complete" first — scattering the freed nodes across
//! many leaves, the canonical fragmentation regime. A probe Algorithm 1
//! rejects *for fragmentation* goes to the planner
//! ([`jigsaw_core::defrag::plan_migrations`]), and a found plan is
//! applied through [`Allocator::apply_plan`] — per-move audits included —
//! with the admitted job left resident. The headline number per arm is
//! `recovered_pct`: the share of fragmentation-rejected probes a bounded
//! migration plan admitted. Three arms run on identical starting states
//! and probe streams: `none` (no planner — the Algorithm-1 baseline,
//! whose mean utilization anchors "utilization recovered"), `greedy`,
//! and `anneal`.
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin defrag_recovery
//!     [--smoke] [--probes N] [--out PATH]
//!     [--floor PATH] [--tolerance PCT] [--min-recovered PCT]
//! ```
//!
//! Two gates can fail the run:
//!
//! * `--min-recovered` (default 30.0): every radix-22 arm must recover at
//!   least this share of its fragmentation rejects — the PR's acceptance
//!   criterion, enforced on every run;
//! * `--floor`: re-read a committed `BENCH_defrag.json` and exit non-zero
//!   if any arm's fresh `recovered_pct` falls more than `--tolerance`
//!   (default 15.0 points) below the committed one.

use jigsaw_bench::scenarios::scenario;
use jigsaw_core::defrag::{plan_migrations, DefragConfig, PlanScheme};
use jigsaw_core::{JobRequest, Scheme};
use jigsaw_topology::ids::JobId;
use jigsaw_topology::FatTree;
use serde::Deserialize;
use std::time::Instant;

const RADIXES: [u32; 2] = [10, 22];

/// The arms, on identical starting states and probe streams: the
/// no-planner baseline, then the two plan-search schemes.
const ARMS: [(&str, Option<PlanScheme>); 3] = [
    ("none", None),
    ("greedy", Some(PlanScheme::Greedy)),
    (
        "anneal",
        Some(PlanScheme::Anneal {
            iters: 256,
            seed: 42,
        }),
    ),
];

struct Args {
    probes: usize,
    out: String,
    floor: Option<String>,
    tolerance: f64,
    min_recovered: f64,
}

struct Arm {
    radix: u32,
    scheme: &'static str,
    probes: usize,
    admitted_plain: usize,
    frag_rejects: usize,
    recovered: usize,
    moves: usize,
    nodes_moved: u64,
    /// Occupancy sampled after every probe, averaged — the utilization
    /// this arm sustains under the identical demand stream. The delta
    /// against the `none` arm is the utilization defragmentation
    /// recovers.
    mean_util_pct: f64,
    plan_p50_ns: u64,
    plan_p99_ns: u64,
}

impl Arm {
    /// Share of fragmentation-rejected probes a plan admitted, percent.
    fn recovered_pct(&self) -> f64 {
        if self.frag_rejects == 0 {
            0.0
        } else {
            100.0 * self.recovered as f64 / self.frag_rejects as f64
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        probes: 300,
        out: "BENCH_defrag.json".to_string(),
        floor: None,
        tolerance: 15.0,
        min_recovered: 30.0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => args.probes = 60,
            "--probes" => {
                args.probes = value("--probes")?
                    .parse()
                    .map_err(|e| format!("--probes: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--floor" => args.floor = Some(value("--floor")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--min-recovered" => {
                args.min_recovered = value("--min-recovered")?
                    .parse()
                    .map_err(|e| format!("--min-recovered: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (see source header for usage)"
                ))
            }
        }
    }
    Ok(args)
}

/// Run one (radix, plan-scheme) arm: stream `probes` deterministic jobs
/// against a fresh `fragmented90` state, planning and applying a
/// migration for every fragmentation reject.
fn measure(
    radix: u32,
    scheme_name: &'static str,
    scheme: Option<PlanScheme>,
    probes: usize,
) -> Arm {
    let tree = FatTree::maximal(radix).expect("even radix");
    let (mut state, mut alloc, mut live, _probe) = scenario("fragmented90", &tree, Scheme::Jigsaw);
    let cfg = scheme.map(|s| DefragConfig {
        scheme: s,
        ..DefragConfig::default()
    });
    let total_nodes = f64::from(tree.num_nodes());

    let leaf = tree.nodes_per_leaf();

    // The churned residents are large and therefore leaf-aligned (Jigsaw
    // places every multi-leaf job as full leaves + remainder), so their
    // completions hand whole leaves back and fragmentation cannot
    // persist. Real fragmentation is made by SMALL jobs sharing leaves:
    // replace each resident larger than a leaf with 1–3-node fillers
    // until utilization returns to 90%. Deterministic, identical across
    // arms.
    let mut next_filler = 2_000_000u32;
    while let Some(pos) = live.iter().position(|a| a.nodes.len() > leaf as usize) {
        let done = live.swap_remove(pos);
        alloc.release(&mut state, &done);
        alloc.recycle(done);
        while u64::from(state.free_node_count() * 10) > u64::from(tree.num_nodes()) {
            let size = 1 + (next_filler * 7) % 3;
            let req = JobRequest::new(JobId(next_filler), size);
            next_filler += 1;
            match alloc.try_admit(&mut state, &req) {
                Ok(a) => live.push(a),
                Err(_) => break,
            }
        }
    }

    let mut arm = Arm {
        radix,
        scheme: scheme_name,
        probes,
        admitted_plain: 0,
        frag_rejects: 0,
        recovered: 0,
        moves: 0,
        nodes_moved: 0,
        mean_util_pct: 0.0,
        plan_p50_ns: 0,
        plan_p99_ns: 0,
    };
    let mut plan_lat: Vec<u64> = Vec::new();
    let mut util_sum = 0.0;
    for i in 0..probes {
        // Sizes in (leaf, 2·leaf]: each needs at least one full leaf, the
        // placement class a fragmented machine is starved of.
        let size = leaf + 1 + (jigsaw_topology::cast::count_u32(i) * 5) % leaf;
        // Make raw capacity available by "completing" resident jobs,
        // draining back to 10% free — the fragmented90 occupancy the
        // scenario defines. Completions model the adversarial steady
        // state: prefer jobs whose departure does NOT hand back a fully
        // free leaf (departures rarely align to leaf boundaries), then
        // smallest first. Capacity returns scattered across many leaves,
        // so raw nodes exist but the full-leaf placement class stays
        // rare — the fragmentation under study. The rule is deterministic
        // and placement-blind in the same way for every arm.
        while u64::from(state.free_node_count() * 10) < u64::from(tree.num_nodes()) {
            let Some(victim) = live
                .iter()
                .enumerate()
                .min_by_key(|(_, a)| (frees_full_leaf(&state, a), a.nodes.len(), a.job.0))
                .map(|(idx, _)| idx)
            else {
                break;
            };
            let done = live.swap_remove(victim);
            alloc.release(&mut state, &done);
            alloc.recycle(done);
        }
        let req = JobRequest::new(JobId(1_000_000 + i as u32), size);
        match alloc.try_admit(&mut state, &req) {
            Ok(a) => {
                // No help needed; the probe stays resident.
                arm.admitted_plain += 1;
                live.push(a);
            }
            Err(reject) if reject.is_fragmentation() => {
                arm.frag_rejects += 1;
                if let Some(cfg) = &cfg {
                    let t0 = Instant::now();
                    let plan = plan_migrations(alloc.as_ref(), &state, &live, &req, reject, cfg);
                    plan_lat.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    if let Some(plan) = plan {
                        arm.moves += plan.moves.len();
                        arm.nodes_moved += u64::from(plan.nodes_moved());
                        // Apply with per-move audits; the admitted job
                        // stays resident — that occupancy IS the recovery.
                        let admitted = alloc.apply_plan(&mut state, &mut live, &plan).expect(
                            "an audited plan applies cleanly to the state it was planned on",
                        );
                        debug_assert_eq!(admitted.job, req.id);
                        arm.recovered += 1;
                    }
                }
            }
            Err(_) => {}
        }
        util_sum += 100.0 * state.allocated_node_count() as f64 / total_nodes;
    }
    arm.mean_util_pct = util_sum / probes as f64;
    if !plan_lat.is_empty() {
        plan_lat.sort_unstable();
        arm.plan_p50_ns = plan_lat[plan_lat.len() / 2];
        arm.plan_p99_ns = plan_lat[(plan_lat.len() * 99 / 100).min(plan_lat.len() - 1)];
    }
    arm
}

/// Would completing `a` leave some leaf entirely free? Used to bias the
/// synthetic completion stream away from departures that align to leaf
/// boundaries (those un-fragment the machine for free).
fn frees_full_leaf(state: &jigsaw_topology::SystemState, a: &jigsaw_core::Allocation) -> bool {
    let tree = state.tree();
    let per_leaf = tree.nodes_per_leaf();
    let mut leaves: Vec<u32> = a.nodes.iter().map(|&n| tree.leaf_of_node(n).0).collect();
    leaves.sort_unstable();
    let mut i = 0;
    while i < leaves.len() {
        let leaf = leaves[i];
        let mut held = 0u32;
        while i < leaves.len() && leaves[i] == leaf {
            held += 1;
            i += 1;
        }
        if state.free_nodes_on_leaf(jigsaw_topology::ids::LeafId(leaf)) + held == per_leaf {
            return true;
        }
    }
    false
}

fn arm_json(a: &Arm) -> String {
    format!(
        "    {{\n      \"radix\": {},\n      \"scheme\": \"{}\",\n      \"probes\": {},\n      \
         \"admitted_plain\": {},\n      \"frag_rejects\": {},\n      \
         \"recovered\": {},\n      \"recovered_pct\": {:.1},\n      \"moves\": {},\n      \
         \"nodes_moved\": {},\n      \"mean_util_pct\": {:.1},\n      \
         \"plan_p50_ns\": {},\n      \"plan_p99_ns\": {}\n    }}",
        a.radix,
        a.scheme,
        a.probes,
        a.admitted_plain,
        a.frag_rejects,
        a.recovered,
        a.recovered_pct(),
        a.moves,
        a.nodes_moved,
        a.mean_util_pct,
        a.plan_p50_ns,
        a.plan_p99_ns
    )
}

/// Committed `recovered_pct` for (radix, scheme) from a previous
/// `BENCH_defrag.json`.
fn floor_recovered(floor: &serde::Value, radix: u32, scheme: &str) -> Option<f64> {
    let arms = serde::field(floor.as_object()?, "arms").as_array()?;
    for arm in arms {
        let obj = arm.as_object()?;
        if u32::from_value(serde::field(obj, "radix")).ok()? == radix
            && String::from_value(serde::field(obj, "scheme")).ok()? == scheme
        {
            return f64::from_value(serde::field(obj, "recovered_pct")).ok();
        }
    }
    None
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("defrag_recovery: {e}");
            std::process::exit(2);
        }
    };

    let mut arms = Vec::new();
    for radix in RADIXES {
        for (name, scheme) in ARMS {
            eprintln!("measuring radix {radix} / {name} ({} probes)", args.probes);
            arms.push(measure(radix, name, scheme, args.probes));
        }
    }

    println!(
        "## defrag recovery trajectory — fragmented90, {} probes/arm\n",
        args.probes
    );
    println!(
        "{:<8} {:<8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "radix", "scheme", "frag", "recov", "recov %", "mean util", "p50 (us)", "p99 (us)"
    );
    for a in &arms {
        println!(
            "{:<8} {:<8} {:>8} {:>8} {:>10.1} {:>10.1} {:>12.2} {:>12.2}",
            a.radix,
            a.scheme,
            a.frag_rejects,
            a.recovered,
            a.recovered_pct(),
            a.mean_util_pct,
            a.plan_p50_ns as f64 / 1000.0,
            a.plan_p99_ns as f64 / 1000.0
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"defrag_recovery\",\n  \"probes\": {},\n  \"arms\": [\n{}\n  ]\n}}\n",
        args.probes,
        arms.iter().map(arm_json).collect::<Vec<_>>().join(",\n")
    );
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("defrag_recovery: write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);

    let mut failed = false;

    // Gate 1 — the acceptance criterion: on fragmented90 at radix 22,
    // Reconfigure must admit at least `--min-recovered` percent of the
    // jobs Algorithm 1 alone rejects for fragmentation. (The `none` arm
    // is the baseline, not a contestant.)
    for a in arms.iter().filter(|a| a.radix == 22 && a.scheme != "none") {
        if a.frag_rejects == 0 {
            eprintln!(
                "defrag_recovery: radix 22 / {} saw no fragmentation rejects — probe stream too easy",
                a.scheme
            );
            failed = true;
        } else if a.recovered_pct() < args.min_recovered {
            eprintln!(
                "defrag_recovery: radix 22 / {} recovered {:.1}% < required {:.1}%",
                a.scheme,
                a.recovered_pct(),
                args.min_recovered
            );
            failed = true;
        }
    }

    // Gate 2 — the committed floor.
    if let Some(floor_path) = &args.floor {
        let text = match std::fs::read_to_string(floor_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("defrag_recovery: read floor {floor_path}: {e}");
                std::process::exit(1);
            }
        };
        let floor = match serde_json::from_str::<serde::Value>(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("defrag_recovery: parse floor {floor_path}: {e}");
                std::process::exit(1);
            }
        };
        for a in &arms {
            let Some(committed) = floor_recovered(&floor, a.radix, a.scheme) else {
                eprintln!(
                    "defrag_recovery: floor has no arm for radix {} / {} — skipping",
                    a.radix, a.scheme
                );
                continue;
            };
            if a.recovered_pct() + args.tolerance < committed {
                eprintln!(
                    "defrag_recovery: radix {} / {} recovered {:.1}% fell more than {:.1} points \
                     below the committed {:.1}%",
                    a.radix,
                    a.scheme,
                    a.recovered_pct(),
                    args.tolerance,
                    committed
                );
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    eprintln!("all gates passed");
}
