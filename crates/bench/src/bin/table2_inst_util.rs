//! Regenerate **Table 2**: frequency of instantaneous-utilization ranges
//! on the Thunder trace for the three job-isolating approaches.
//!
//! Paper shape to reproduce: Jigsaw spends ~a quarter of samples at ≥98%
//! (LaaS virtually never — its rounding strands nodes); TA is below 80%
//! far more often than either (external fragmentation).
//!
//! ```text
//! cargo run --release -p jigsaw-bench --bin table2_inst_util [--scale f]
//! ```

use jigsaw_bench::report::{table, write_json};
use jigsaw_bench::runner::{product, run_grid_or_exit};
use jigsaw_bench::{trace_by_name, HarnessArgs};
use jigsaw_core::Scheme;
use jigsaw_sim::metrics::INST_UTIL_LABELS;
use jigsaw_sim::Scenario;

fn main() {
    let args = HarnessArgs::parse();
    let traces = vec![trace_by_name("Thunder", args.scale, args.seed)];
    let schemes = [Scheme::Laas, Scheme::Jigsaw, Scheme::Ta];
    let cells = product(&["Thunder"], &schemes, &[Scenario::None]);
    eprintln!("simulating Thunder under LaaS/Jigsaw/TA ...");
    let results = run_grid_or_exit(&args.pool(), &cells, &traces, args.seed, true);

    let rows: Vec<(String, Vec<String>)> = schemes
        .iter()
        .map(|&k| {
            let r = jigsaw_bench::report::cell(&results, "Thunder", k, Scenario::None);
            let total: u64 = r.inst_util_buckets.iter().sum();
            let values = r
                .inst_util_buckets
                .iter()
                .map(|&c| format!("{c} ({:.0}%)", 100.0 * c as f64 / total.max(1) as f64))
                .collect();
            (k.name().to_string(), values)
        })
        .collect();
    println!(
        "{}",
        table(
            "Table 2 — instantaneous utilization ranges on Thunder (count of samples)",
            &INST_UTIL_LABELS,
            &rows
        )
    );
    write_json(&args.out_dir, "table2_inst_util", &results).expect("write results");
}
