//! Minimal command-line handling shared by the experiment binaries (no
//! external CLI dependency needed for three flags).

/// Common harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Trace scale factor (fraction of the paper's job counts).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Where to write JSON results (`results/` by default).
    pub out_dir: String,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.02,
            seed: 2021,
            out_dir: "results".into(),
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale <f> | --full | --seed <n> | --out <dir>` from
    /// `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--full" => args.scale = 1.0,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--out" => {
                    args.out_dir = it
                        .next()
                        .unwrap_or_else(|| usage("--out needs a directory"));
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.scale <= 0.0 || args.scale > 1.0 {
            usage("--scale must be in (0, 1]");
        }
        args
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <experiment> [--scale <0..1>] [--full] [--seed <n>] [--out <dir>]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = HarnessArgs::default();
        assert!(a.scale > 0.0 && a.scale <= 1.0);
        assert_eq!(a.out_dir, "results");
    }
}
