//! Minimal command-line handling shared by the experiment binaries (no
//! external CLI dependency needed for four flags).

use jigsaw_par::Pool;

/// Common harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Trace scale factor (fraction of the paper's job counts).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Where to write JSON results (`results/` by default).
    pub out_dir: String,
    /// Worker count for the parallel executor (`--jobs <n>`). `None`
    /// defers to `JIGSAW_JOBS` or the machine's available parallelism.
    pub jobs: Option<usize>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.02,
            seed: 2021,
            out_dir: "results".into(),
            jobs: None,
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale <f> | --full | --seed <n> | --out <dir> | --jobs <n>`
    /// from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--full" => args.scale = 1.0,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--out" => {
                    args.out_dir = it
                        .next()
                        .unwrap_or_else(|| usage("--out needs a directory"));
                }
                "--jobs" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs a positive integer"));
                    if n == 0 {
                        usage("--jobs must be at least 1");
                    }
                    args.jobs = Some(n);
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.scale <= 0.0 || args.scale > 1.0 {
            usage("--scale must be in (0, 1]");
        }
        args
    }

    /// The work pool every experiment fans its grid cells onto. `--jobs <n>`
    /// pins the worker count; otherwise `JIGSAW_JOBS` / available
    /// parallelism decide. Results are deterministic either way — see
    /// `jigsaw_par`.
    pub fn pool(&self) -> Pool {
        match self.jobs {
            Some(n) => Pool::new(n),
            None => Pool::from_env(),
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <experiment> [--scale <0..1>] [--full] [--seed <n>] [--out <dir>] [--jobs <n>]"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = HarnessArgs::default();
        assert!(a.scale > 0.0 && a.scale <= 1.0);
        assert_eq!(a.out_dir, "results");
        assert_eq!(a.jobs, None);
    }

    #[test]
    fn pool_honors_explicit_jobs() {
        let a = HarnessArgs {
            jobs: Some(3),
            ..HarnessArgs::default()
        };
        assert_eq!(a.pool().jobs(), 3);
    }
}
