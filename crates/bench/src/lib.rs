//! # jigsaw-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Jigsaw paper's evaluation (Smith & Lowenthal, HPDC 2021, §5–6). One
//! binary per artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1_traces`     | Table 1 — trace characteristics |
//! | `fig6_utilization`  | Fig. 6 — average system utilization, 5 schemes × 9 traces |
//! | `table2_inst_util`  | Table 2 — instantaneous-utilization buckets on Thunder |
//! | `fig7_turnaround`   | Fig. 7 — normalized turnaround, Aug-Cab & Oct-Cab × 6 scenarios |
//! | `fig8_makespan`     | Fig. 8 — normalized makespan, Thunder & Atlas × 6 scenarios |
//! | `table3_schedtime`  | Table 3 — average scheduling time per job |
//! | `ablation_lc`       | DESIGN.md §6 — the full-leaf restriction vs. least-constrained |
//! | `ablation_shape_order` | DESIGN.md §6 — densest-first vs. widest-first shape order |
//! | `motivation_interference` | §1–2.2 measured: interference under Baseline/SAR/Jigsaw |
//! | `backfill_policies` | extension — FIFO vs. EASY vs. conservative backfilling |
//! | `estimate_error`    | extension — runtime-estimate sensitivity |
//! | `failure_resilience`| extension — node-failure injection sweep |
//! | `run_all`           | everything above, results to `results/*.json` |
//!
//! Every binary accepts `--scale <f>` (default 0.02) for the trace job
//! counts and `--full` for paper scale, plus `--seed <n>` and `--jobs <n>`.
//! Experiments fan their (trace × scheme × scenario) cells across a
//! `jigsaw_par::Pool`; results come back in submission order, so reports
//! are byte-identical for any worker count.

#![warn(missing_docs)]

pub mod args;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenarios;

pub use args::HarnessArgs;
pub use registry::{paper_traces, trace_by_name, TraceSpec, WORKLOAD_V2};
pub use runner::{run_grid, run_grid_or_exit, CellFailure, GridCell, GridResult};
