//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Runs each property as a deterministic randomized test: the RNG is
//! seeded from the property's name, so failures reproduce across runs and
//! machines. Differences from real proptest, by design:
//!
//! * no shrinking — a failure reports the case number and the generated
//!   inputs via the panic message instead of a minimized counterexample,
//! * no persistence — `*.proptest-regressions` files are ignored,
//! * strategies are plain generators (no value trees).
//!
//! The surface covered is exactly what this workspace uses: integer range
//! strategies, `any::<T>()`, tuples of strategies, `prop::collection::vec`,
//! `prop_map`, `proptest!`, `prop_assert!`, `prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

use rand::prelude::*;

/// The RNG handed to strategies. Deterministic per property name.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a property name (FNV-1a of the name).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The `any::<T>()` strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build it.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for all values of a primitive type.
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_via_random!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `len` on each case.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, min..max)`: vectors of `min..max` elements.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Define properties. Each `fn name(arg in strategy, ...) { body }` becomes
/// a test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expand the property fns of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __case_desc = format!(
                    concat!("[case {}/{}] ", $(stringify!($arg), " = {:?} "),+),
                    __case + 1, __cfg.cases, $(&$arg),+
                );
                $crate::__run_case(&__case_desc, move || $body);
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Internal: run one case, decorating panics with the generated inputs.
#[doc(hidden)]
pub fn __run_case<F: FnOnce() + std::panic::UnwindSafe>(desc: &str, f: F) {
    if let Err(cause) = std::panic::catch_unwind(f) {
        eprintln!("proptest stand-in: property failed at {desc}");
        std::panic::resume_unwind(cause);
    }
}

/// Assert inside a property (stand-in: plain `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (stand-in: `assert_eq!` semantics,
/// but by-reference so operands are not moved, matching real proptest).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!(&$a, &$b) };
    ($a:expr, $b:expr, $($t:tt)+) => { assert_eq!(&$a, &$b, $($t)+) };
}

/// The common imports.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0u64..1000) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(1u32..=5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..=5).contains(&x)));
        }

        #[test]
        fn tuples_and_map(pair in (1u32..4, any::<bool>()), mapped in (2u32..5).prop_map(|x| x * 2)) {
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!(mapped % 2 == 0);
            prop_assert_eq!(mapped / 2 * 2, mapped);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        let s = 0u64..u64::MAX;
        use super::Strategy;
        assert_eq!(s.generate(&mut a), (0u64..u64::MAX).generate(&mut b));
    }
}
