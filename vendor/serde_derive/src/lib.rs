//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-based `serde` facade in `vendor/serde` (miniserde-style: one
//! `Value` tree, no visitor machinery). The parser is hand-rolled over
//! `proc_macro::TokenStream` — this build environment has no registry
//! access, so `syn`/`quote` are unavailable.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, like real serde),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Not supported (panics with a clear message): generic types, unions, and
//! `#[serde(...)]` attributes.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes a derived item can take.
enum Fields {
    Unit,
    /// Tuple fields; the count.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_ser(name, fields),
        Item::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_de(name, fields),
        Item::Enum { name, variants } => gen_enum_de(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive stand-in: enum `{name}` has no body"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stand-in: expected identifier, found {other:?}"),
    }
}

/// Field names of a named-field group. Commas inside generic arguments are
/// tracked by `<`/`>` depth; parenthesized/bracketed types are atomic
/// groups, so only angle brackets need manual balancing.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut angle: i32 = 0;
    let mut expect_name = true;
    let mut k = 0usize;
    while k < toks.len() {
        match &toks[k] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute or doc comment: skip `#` + the bracket group.
                k += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => expect_name = true,
            TokenTree::Ident(id) if expect_name => {
                let s = id.to_string();
                if s != "pub"
                    && matches!(toks.get(k + 1), Some(TokenTree::Punct(c)) if c.as_char() == ':')
                {
                    names.push(s);
                    expect_name = false;
                }
            }
            _ => {}
        }
        k += 1;
    }
    names
}

/// Number of fields in a tuple-struct/-variant body (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + 1 - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip to past the next top-level comma (discriminants don't occur).
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// --- codegen: Serialize ----------------------------------------------------

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Fields::Named(names) => {
            let pushes: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "{{ let mut __obj = Vec::new(); {} ::serde::Value::Object(__obj) }}",
                pushes.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (v, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                };
                format!(
                    "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),",
                    binds.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let binds = fnames.join(", ");
                let pushes: Vec<String> = fnames
                    .iter()
                    .map(|f| {
                        format!(
                            "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => {{ let mut __obj = Vec::new(); {} \
                     ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__obj))]) }},",
                    pushes.join(" ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
         }}",
        arms.join("\n")
    )
}

// --- codegen: Deserialize --------------------------------------------------

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("Ok({name})"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "{{ let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\"))?;\n\
                    if __arr.len() != {n} {{ return Err(::serde::DeError::expected(\"{n}-element array for {name}\")); }}\n\
                    Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "{{ let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\"))?;\n\
                    Ok({name} {{ {} }}) }}",
                inits.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[(String, Fields)]) -> String {
    // Unit variants arrive as strings; data variants as single-key objects
    // (externally tagged).
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => {
                unit_arms.push(format!("\"{v}\" => return Ok({name}::{v}),"));
            }
            Fields::Tuple(1) => tagged_arms.push(format!(
                "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
            )),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{v}\" => {{\n\
                         let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{v}\"))?;\n\
                         if __arr.len() != {n} {{ return Err(::serde::DeError::expected(\"{n}-element array for {name}::{v}\")); }}\n\
                         return Ok({name}::{v}({}));\n\
                     }}",
                    elems.join(", ")
                ));
            }
            Fields::Named(fnames) => {
                let inits: Vec<String> = fnames
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\"))?,"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "\"{v}\" => {{\n\
                         let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{v}\"))?;\n\
                         return Ok({name}::{v} {{ {} }});\n\
                     }}",
                    inits.join(" ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if let Some(__s) = __v.as_str() {{\n\
                     match __s {{ {} _ => {{}} }}\n\
                     return Err(::serde::DeError::expected(\"known unit variant of {name}\"));\n\
                 }}\n\
                 if let Some(__obj) = __v.as_object() {{\n\
                     if __obj.len() == 1 {{\n\
                         let (__tag, __inner) = (&__obj[0].0, &__obj[0].1);\n\
                         match __tag.as_str() {{ {} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"externally tagged variant of {name}\"))\n\
             }}\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
