//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Renders and parses JSON over the vendored `serde`'s [`Value`] model.
//! Provides the exact surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], the
//! [`json!`] macro, and an [`Error`] type.
//!
//! Behavioral notes (matching real serde_json where it matters):
//! * non-finite floats render as `null` (real serde_json errors; the
//!   simulator's metrics can legitimately contain NaN for empty averages,
//!   so rendering `null` is the more useful choice here),
//! * object key order is preserved,
//! * `\uXXXX` escapes (including surrogate pairs) are parsed.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` into its [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// --- rendering -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Shortest round-trip formatting; force a fraction marker so
                // floats re-parse as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            s.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            s.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            s.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            s.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            s.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            s.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            s.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            s.push('\u{000C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

// --- the json! macro -------------------------------------------------------

/// Construct a [`Value`] from JSON-ish syntax: object/array literals with
/// trailing commas, `null`/`true`/`false`, and arbitrary serializable
/// expressions in value position. Unlike real serde_json, nested object
/// literals must be written as explicit inner `json!({...})` calls (an
/// object literal is not a Rust expression; this stand-in does not
/// tt-munch).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = json!({
            "name": "jigsaw",
            "nodes": 1024u32,
            "util": 0.95f64,
            "tags": json!(["a", "b"]),
            "nested": json!({ "x": 1u32 }),
            "none": json!(null),
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s":"a\n\"A😀","n":-3,"f":2.5e3}"#).unwrap();
        assert_eq!(v.get("s").unwrap(), &Value::Str("a\n\"A😀".to_string()));
        assert_eq!(v.get("n").unwrap(), &Value::Int(-3));
        assert_eq!(v.get("f").unwrap(), &Value::Float(2500.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1u32, 2u64), (3, 4)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, u64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
