//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the workspace's benchmark sources compiling and runnable without
//! network access. Each benchmark is timed with a simple calibrated loop
//! (warm-up, then enough iterations to fill ~50 ms) and reported as
//! ns/iter on stdout — no statistics, no HTML reports, no comparison to
//! saved baselines.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `--test` smoke mode: run every routine once, skip the timing loops.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Enable or disable `--test` smoke mode (done by `criterion_main!` when
/// the harness is invoked as `cargo bench ... -- --test`, mirroring real
/// criterion). In smoke mode each benchmark routine executes exactly once
/// — enough for CI to prove the benchmarks still run, in milliseconds.
pub fn set_test_mode(enabled: bool) {
    TEST_MODE.store(enabled, Ordering::Relaxed);
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    ns_per_iter: Option<f64>,
    smoke_ran: bool,
}

impl Bencher {
    /// Time `routine`, calibrating the iteration count automatically.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if test_mode() {
            black_box(routine());
            self.smoke_ran = true;
            return;
        }
        // Warm-up and calibration: run once to estimate cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~50 ms of measurement, capped at 10k iterations.
        let iters =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Criterion {
        run_one(&name.into_id(), None, f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&id.id, None, |b| f(b, input));
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in ignores it.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(&name.into_id(), Some(&self.name), f);
        self
    }

    /// Run one benchmark with an input value in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.id, Some(&self.name), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, group: Option<&str>, mut f: F) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let mut b = Bencher {
        ns_per_iter: None,
        smoke_ran: false,
    };
    f(&mut b);
    match (b.ns_per_iter, b.smoke_ran) {
        (Some(ns), _) => println!("bench {label:<60} {ns:>14.1} ns/iter"),
        (None, true) => println!("bench {label:<60}  ok (smoke)"),
        (None, false) => {
            println!("bench {label:<60}  (no measurement: Bencher::iter never called)")
        }
    }
}

/// Collect benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                $crate::set_test_mode(true);
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_the_routine_exactly_once() {
        set_test_mode(true);
        let mut count = 0u32;
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        set_test_mode(false);
        assert_eq!(count, 1);
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
