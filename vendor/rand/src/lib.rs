//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the surface this workspace uses: the [`Rng`] core trait, the
//! [`RngExt`] extension methods (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), and [`seq::SliceRandom`]
//! (Fisher–Yates shuffle, `choose`).
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` always produces the
//! same stream for the same `s`, on every platform. The stream differs
//! from the real rand crate's StdRng (ChaCha12) — consumers in this
//! workspace only rely on *seeded determinism* and statistical quality,
//! not on specific values.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (floats are uniform in `[0, 1)`).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniformly random value in `range` (empty ranges panic).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types with a canonical uniform distribution.
pub trait Random {
    /// Draw one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
/// irrelevant at this workspace's scales.
#[inline]
fn bounded(rng: &mut (impl Rng + ?Sized), n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ with SplitMix64
    /// seed expansion (Blackman & Vigna's recommended initialization).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::{bounded, Rng};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded(rng, self.len() as u64) as usize)
            }
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v = rng.random_range(5u32..=6);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
