//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! `par_iter()` returns the ordinary sequential iterator, so all
//! combinator chains compile and produce identical results — just without
//! parallel speedup. When real rayon becomes installable, deleting this
//! stand-in restores parallelism with no call-site changes.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

/// The common imports.
pub mod prelude {
    /// Sequential stand-in for rayon's `par_iter`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element reference type.
        type Iter: Iterator;

        /// Iterate "in parallel" (sequentially, in this stand-in).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> std::slice::Iter<'data, T> {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> std::slice::Iter<'data, T> {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
