//! Offline stand-in for `serde`.
//!
//! This build environment has no access to crates.io, so the real serde is
//! unavailable (see `vendor/README.md`). This crate provides the same
//! *surface* the workspace uses — `Serialize`/`Deserialize` traits and
//! `#[derive(Serialize, Deserialize)]` — over a simplified, miniserde-style
//! data model: everything serializes through one [`Value`] tree, and
//! `serde_json` renders/parses that tree. No visitor machinery, no zero-copy,
//! no `#[serde(...)]` attributes.
//!
//! Guarantees the workspace relies on:
//! * round-trips: `from_value(to_value(x)) == x` for every supported type,
//! * newtype structs serialize transparently (`JobId(7)` → `7`),
//! * enums are externally tagged (`Shape::SingleLeaf{..}` →
//!   `{"SingleLeaf": {...}}`, unit variants → `"Variant"`), matching real
//!   serde's default representation.

// Offline stand-in, outside the scheduler's R1/R2 contract: exempt from
// the strict lib-target clippy pass (see .github/workflows/ci.yml).
#![allow(clippy::cast_possible_truncation, clippy::unwrap_used)]

// Let the derive macros' `::serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The universal serialized form: a JSON-shaped value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so output
/// is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Field lookup for derived `Deserialize` impls: missing keys read as
/// `Null` (so `Option` fields tolerate omission, everything else reports a
/// type error naming the expectation).
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Deserialization error: a human-readable expectation mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Error stating what was expected.
    pub fn expected(what: &str) -> DeError {
        DeError {
            msg: format!("expected {what}"),
        }
    }

    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the serialized form.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::expected(stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(DeError::expected(stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite floats serialize as null
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

// --- composite impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let vec: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(vec)
            .map_err(|_| DeError::expected("fixed-size array of the right length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::expected("tuple array of matching arity"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: i32,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Tup(u32),
        Pair(u32, bool),
        Rec { a: Vec<u64>, b: Option<(u32, u64)> },
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(x: T) {
        let v = x.to_value();
        assert_eq!(T::from_value(&v).unwrap(), x);
    }

    #[test]
    fn derived_struct_roundtrips() {
        roundtrip(Point {
            x: 7,
            y: -3,
            label: "hi".into(),
        });
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Wrapper(9).to_value(), Value::UInt(9));
        roundtrip(Wrapper(9));
    }

    #[test]
    fn enum_representations() {
        assert_eq!(Kind::Unit.to_value(), Value::Str("Unit".into()));
        roundtrip(Kind::Unit);
        roundtrip(Kind::Tup(5));
        roundtrip(Kind::Pair(5, true));
        roundtrip(Kind::Rec {
            a: vec![1, 2],
            b: Some((3, 4)),
        });
        roundtrip(Kind::Rec { a: vec![], b: None });
    }

    #[test]
    fn missing_option_field_reads_as_none() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![]))]);
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            a: Vec<u64>,
            b: Option<u32>,
        }
        assert_eq!(S::from_value(&v).unwrap(), S { a: vec![], b: None });
    }

    #[test]
    fn arrays_and_maps() {
        roundtrip([1u64, 2, 3]);
        let mut m = HashMap::new();
        m.insert("k".to_string(), 3u32);
        roundtrip(m);
    }
}
